"""Canonicalization / symmetry reduction tests (paper §5.1, Figs. 9, 14)."""

from repro.core.canonical import (
    CanonicalSet,
    canonical_form,
    canonicalize,
    paper_canonicalize,
    symmetry_class_size,
)
from repro.litmus.catalog import CATALOG
from repro.litmus.events import DepKind, Order, read, write
from repro.litmus.test import Dep, LitmusTest


def fig9_pair():
    """The two symmetric tests of the paper's Fig. 9."""
    a = LitmusTest(
        (
            (write(0, 1), read(1, Order.ACQ)),
            (write(1, 1, Order.REL), read(0)),
        )
    )
    b = LitmusTest(
        (
            (write(1, 1, Order.REL), read(0)),
            (write(0, 1), read(1, Order.ACQ)),
        )
    )
    return a, b


class TestExactCanonicalization:
    def test_fig9_symmetry_detected(self):
        a, b = fig9_pair()
        assert canonical_form(a) == canonical_form(b)

    def test_thread_permutation_invariance(self):
        t = CATALOG["WRC"].test
        permuted = LitmusTest(tuple(reversed(t.threads)))
        assert canonical_form(t) == canonical_form(permuted)

    def test_address_renaming_invariance(self):
        a = LitmusTest(((write(0, 1), write(1, 1)), (read(1), read(0))))
        b = LitmusTest(((write(7, 1), write(3, 1)), (read(3), read(7))))
        assert canonical_form(a) == canonical_form(b)

    def test_value_normalization(self):
        # write values are labels; 1-vs-2 relabellings are symmetric.
        a = LitmusTest(((write(0, 2), write(0, 1)),))
        b = LitmusTest(((write(0, 1), write(0, 2)),))
        assert canonical_form(a) == canonical_form(b)

    def test_wwc_variants_collapse(self):
        """Paper Fig. 14: the two WWC thread-swap variants are symmetric;
        the exact canonicalizer (unlike the paper's) catches them."""
        wwc = CATALOG["WWC"].test
        swapped = LitmusTest(
            (wwc.threads[0], wwc.threads[2], wwc.threads[1]),
            deps=wwc.deps,
        )
        assert canonical_form(wwc) == canonical_form(swapped)

    def test_distinct_tests_stay_distinct(self):
        assert canonical_form(CATALOG["MP"].test) != canonical_form(
            CATALOG["SB"].test
        )

    def test_order_annotations_distinguish(self):
        a = LitmusTest(((read(0, Order.ACQ),), (write(0, 1),)))
        b = LitmusTest(((read(0),), (write(0, 1),)))
        assert canonical_form(a) != canonical_form(b)

    def test_deps_distinguish(self):
        a = LitmusTest(
            ((read(0), write(1, 1)),),
            deps=frozenset({Dep(0, 1, DepKind.ADDR)}),
        )
        b = LitmusTest(((read(0), write(1, 1)),))
        assert canonical_form(a) != canonical_form(b)

    def test_event_map_is_bijective(self):
        t = CATALOG["WRC"].test
        _, event_map, addr_map = canonicalize(t)
        assert sorted(event_map.keys()) == list(range(t.num_events))
        assert sorted(event_map.values()) == list(range(t.num_events))
        assert sorted(addr_map.keys()) == sorted(t.addresses)

    def test_canonical_is_idempotent(self):
        t = CATALOG["IRIW"].test
        once = canonical_form(t)
        assert canonical_form(once) == once


class TestPaperCanonicalizer:
    def test_catches_plain_symmetry(self):
        a, b = fig9_pair()
        assert paper_canonicalize(a) == paper_canonicalize(b)

    def test_misses_wwc(self):
        """The paper's own §6.1 admission: the greedy canonicalizer
        cannot order two threads with identical local shapes, so the
        swapped WWC variants survive as duplicates."""
        wwc = CATALOG["WWC"].test
        swapped = LitmusTest(
            (wwc.threads[0], wwc.threads[2], wwc.threads[1]),
            deps=wwc.deps,
        )
        assert paper_canonicalize(wwc) != paper_canonicalize(swapped)
        # ...while the exact one collapses them (tested above).


class TestSymmetryClassSize:
    def test_symmetric_threads_shrink_class(self):
        sb = CATALOG["SB"].test  # two mirror-image threads
        assert symmetry_class_size(sb) == 1

    def test_asymmetric_class(self):
        wrc = CATALOG["WRC"].test
        assert symmetry_class_size(wrc) >= 2


class TestCanonicalSet:
    def test_dedups_symmetric(self):
        a, b = fig9_pair()
        s = CanonicalSet()
        assert s.add(a)
        assert not s.add(b)
        assert len(s) == 1
        assert b in s

    def test_paper_mode_keeps_wwc_duplicates(self):
        wwc = CATALOG["WWC"].test
        swapped = LitmusTest(
            (wwc.threads[0], wwc.threads[2], wwc.threads[1]),
            deps=wwc.deps,
        )
        exact = CanonicalSet(exact=True)
        greedy = CanonicalSet(exact=False)
        for t in (wwc, swapped):
            exact.add(t)
            greedy.add(t)
        assert len(exact) == 1
        assert len(greedy) == 2

    def test_iteration(self):
        s = CanonicalSet()
        s.add(CATALOG["MP"].test)
        s.add(CATALOG["SB"].test)
        assert len(list(s)) == 2
        assert len(list(s.canonical_tests())) == 2


class TestCanonicalFoundations:
    """Idempotence and renaming invariance over catalog tests — the
    properties the duplicate-test lint (LIT004) is built on."""

    SAMPLE = ("MP", "SB", "LB", "WRC", "WWC", "IRIW", "2+2W", "PPOAA", "n5")

    def test_canonicalization_is_idempotent(self):
        for name in self.SAMPLE:
            canon = canonical_form(CATALOG[name].test)
            assert canonical_form(canon) == canon, name

    def test_invariant_under_thread_renaming(self):
        from itertools import permutations

        for name in self.SAMPLE:
            t = CATALOG[name].test
            base = canonical_form(t)
            for order in permutations(range(len(t.threads))):
                eid_map = {}
                next_eid = 0
                for tid in order:
                    for i in range(len(t.threads[tid])):
                        eid_map[t.eid(tid, i)] = next_eid
                        next_eid += 1
                permuted = LitmusTest(
                    tuple(t.threads[tid] for tid in order),
                    frozenset(
                        (eid_map[r], eid_map[w]) for r, w in t.rmw
                    ),
                    frozenset(
                        Dep(eid_map[d.src], eid_map[d.dst], d.kind)
                        for d in t.deps
                    ),
                    tuple(t.scopes[tid] for tid in order)
                    if t.scopes is not None
                    else None,
                )
                assert canonical_form(permuted) == base, (name, order)

    def test_invariant_under_address_renaming(self):
        for name in self.SAMPLE:
            t = CATALOG[name].test
            base = canonical_form(t)
            addr_map = {a: 10 + (len(t.addresses) - 1 - i) for i, a in enumerate(t.addresses)}
            renamed = LitmusTest(
                tuple(
                    tuple(
                        inst
                        if inst.address is None
                        else inst.__class__(
                            inst.kind,
                            addr_map[inst.address],
                            inst.order,
                            inst.fence,
                            inst.value,
                            inst.scope,
                        )
                        for inst in thread
                    )
                    for thread in t.threads
                ),
                t.rmw,
                t.deps,
                t.scopes,
            )
            assert canonical_form(renamed) == base, name

    def test_event_map_is_a_bijection(self):
        for name in self.SAMPLE:
            t = CATALOG[name].test
            _, event_map, addr_map = canonicalize(t)
            assert sorted(event_map) == list(range(t.num_events))
            assert sorted(event_map.values()) == list(range(t.num_events))
            assert sorted(addr_map) == sorted(t.addresses)
