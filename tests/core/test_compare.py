"""Subsumption / Table 4 comparison tests."""

import pytest

from repro.core.compare import (
    compare_suites,
    find_subtest,
    is_subtest,
    subtests,
)
from repro.core.enumerator import EnumerationConfig
from repro.core.suite import TestSuite
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.catalog import CATALOG
from repro.models.registry import get_model

TSO = get_model("tso")


class TestSubtests:
    def test_test_contains_itself(self):
        mp = CATALOG["MP"].test
        assert is_subtest(mp, mp, TSO)

    def test_n5_contains_corw(self):
        """Paper Fig. 10: n5/coLB contains CoRW."""
        assert is_subtest(CATALOG["CoRW"].test, CATALOG["n5"].test, TSO)

    def test_iwp28b_contains_mp(self):
        assert is_subtest(
            CATALOG["MP"].test, CATALOG["iwp2.8.b"].test, TSO
        )

    def test_iwp27_contains_iriw(self):
        assert is_subtest(
            CATALOG["IRIW"].test, CATALOG["iwp2.7"].test, TSO
        )

    def test_mp_does_not_contain_sb(self):
        assert not is_subtest(CATALOG["SB"].test, CATALOG["MP"].test, TSO)

    def test_smaller_cannot_contain_larger(self):
        assert not is_subtest(
            CATALOG["IRIW"].test, CATALOG["MP"].test, TSO
        )

    def test_subtest_set_grows_with_depth(self):
        mp = CATALOG["MP"].test
        shallow = subtests(mp, TSO, max_steps=1)
        deep = subtests(mp, TSO, max_steps=3)
        assert shallow <= deep
        assert len(deep) > len(shallow)

    def test_power_subtest_via_fence_demotion(self):
        power = get_model("power")
        assert is_subtest(
            CATALOG["MP+lwsync+addr"].test,
            CATALOG["MP+sync+addr"].test,
            power,
        )


class TestFindSubtest:
    def test_finds_corw_inside_n5(self):
        suite = TestSuite("tso")
        suite.add(
            CATALOG["CoRW"].test, CATALOG["CoRW"].forbidden, ["sc_per_loc"]
        )
        found = find_subtest(CATALOG["n5"].test, suite, TSO)
        assert found is not None
        assert found.num_events == 3

    def test_no_subtest_returns_none(self):
        suite = TestSuite("tso")
        suite.add(CATALOG["MP"].test, CATALOG["MP"].forbidden, ["causality"])
        assert find_subtest(CATALOG["CoWW"].test, suite, TSO) is None


class TestCompareSuites:
    @pytest.fixture(scope="class")
    def synthesized(self):
        return synthesize(
            TSO,
            SynthesisOptions(
                bound=4,
                config=EnumerationConfig(max_events=4, max_addresses=2),
            ),
        ).union

    def test_table4_small_bound(self, synthesized):
        reference = [CATALOG[n] for n in ("MP", "LB", "S", "2+2W", "n5")]
        comparison = compare_suites(reference, synthesized, TSO)
        assert set(comparison.both) == {"MP", "LB", "S", "2+2W"}
        assert list(comparison.reference_only) == ["n5"]
        # n5 contains CoRW, which the bound-4 synthesis emits
        assert comparison.reference_only["n5"] is not None
        assert comparison.fully_subsumed
        assert len(comparison.synthesized_only) > 0

    def test_summary_renders(self, synthesized):
        reference = [CATALOG["MP"], CATALOG["n5"]]
        comparison = compare_suites(reference, synthesized, TSO)
        text = comparison.summary()
        assert "BOTH" in text and "REF-ONLY" in text

    def test_gap_reported(self):
        # empty synthesized suite: nothing matches, no subtests found
        empty = TestSuite("tso")
        comparison = compare_suites([CATALOG["MP"]], empty, TSO)
        assert not comparison.fully_subsumed
        assert "no subtest found" in comparison.summary()
