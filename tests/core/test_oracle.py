"""ExplicitOracle unit tests."""

import pytest

from repro.core.oracle import ExplicitOracle
from repro.litmus.catalog import CATALOG, outcome_from_values
from repro.litmus.execution import Outcome
from repro.models.registry import get_model


@pytest.fixture()
def oracle():
    return ExplicitOracle(get_model("tso"))


class TestAnalyze:
    def test_mp_landscape(self, oracle):
        analysis = oracle.analyze(CATALOG["MP"].test)
        assert len(analysis.all_outcomes) == 4
        assert len(analysis.model_valid) == 3
        assert len(analysis.forbidden()) == 1

    def test_forbidden_per_axiom(self, oracle):
        corr = CATALOG["CoRR"].test
        analysis = oracle.analyze(corr)
        assert analysis.forbidden("sc_per_loc")
        assert not analysis.forbidden("rmw_atomicity")

    def test_analysis_cached(self, oracle):
        test = CATALOG["MP"].test
        first = oracle.analyze(test)
        count = oracle.stats["analyses"]
        second = oracle.analyze(test)
        assert first is second
        assert oracle.stats["analyses"] == count

    def test_axiom_bits(self, oracle):
        from repro.semantics.enumerate import enumerate_executions

        test = CATALOG["MP"].test
        for ex in enumerate_executions(test):
            bits = oracle.axiom_bits(ex)
            assert set(bits) == {
                "sc_per_loc",
                "rmw_atomicity",
                "causality",
            }
            assert oracle.is_valid(ex) == all(bits.values())


class TestAdmits:
    def test_partial_constraint(self, oracle):
        test = CATALOG["MP"].test
        analysis = oracle.analyze(test)
        # r2=1 alone is admissible
        partial = outcome_from_values(test, reads={2: 1})
        assert analysis.admits(partial)
        # the full forbidden outcome is not
        assert not analysis.admits(CATALOG["MP"].forbidden)

    def test_empty_constraint_always_admitted(self, oracle):
        analysis = oracle.analyze(CATALOG["MP"].test)
        assert analysis.admits(Outcome((), ()))

    def test_untouched_address_initial(self, oracle):
        analysis = oracle.analyze(CATALOG["MP"].test)
        assert analysis.admits(Outcome((), ((42, None),)))
        assert not analysis.admits(Outcome((), ((42, 0),)))


class TestObservable:
    def test_observability_cached(self, oracle):
        entry = CATALOG["MP"]
        oracle.observable(entry.test, entry.forbidden)
        count = oracle.stats["observations"]
        oracle.observable(entry.test, entry.forbidden)
        assert oracle.stats["observations"] == count

    def test_workaround_flag_switches_axioms(self):
        scc = get_model("scc")
        plain = ExplicitOracle(scc)
        wa = ExplicitOracle(scc, workaround=True)
        assert (
            plain._axioms["causality"] is not wa._axioms["causality"]
        )

    def test_cache_eviction(self):
        oracle = ExplicitOracle(get_model("tso"), analysis_cache=2)
        for name in ("MP", "SB", "LB"):
            oracle.analyze(CATALOG[name].test)
        assert len(oracle._analysis) == 2
