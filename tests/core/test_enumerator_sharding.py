"""Sharded enumeration properties (the repro.exec contract).

For every ``(model, bound, n_shards)`` in the grid, the union of the
``n`` shard streams must be the same *multiset* of candidates as the
unsharded stream, and re-sorting shard outputs by their global
``(item, position)`` coordinates must reconstruct the exact sequential
order — both are what the parallel merge relies on.
"""

from collections import Counter

import pytest

from repro.core.enumerator import (
    EnumerationConfig,
    enumerate_shard,
    enumerate_tests,
)
from repro.models.registry import get_model

GRID = [
    ("sc", 3, 2),
    ("sc", 3, 5),
    ("tso", 3, 2),
    ("tso", 3, 3),
    ("tso", 4, 4),
    ("power", 3, 3),
    ("scc", 3, 2),  # scoped vocabulary: group assignments fan out per item
]


def _config(bound: int) -> EnumerationConfig:
    return EnumerationConfig(max_events=bound, max_addresses=2)


class TestShardPartition:
    @pytest.mark.parametrize("model_name,bound,n_shards", GRID)
    def test_shard_union_equals_unsharded(self, model_name, bound, n_shards):
        vocab = get_model(model_name).vocabulary
        config = _config(bound)
        base = Counter(enumerate_tests(vocab, config))
        sharded: Counter = Counter()
        for i in range(n_shards):
            sharded.update(enumerate_tests(vocab, config, shard=(i, n_shards)))
        assert sharded == base

    @pytest.mark.parametrize("model_name,bound,n_shards", GRID)
    def test_sort_key_reconstructs_sequential_order(
        self, model_name, bound, n_shards
    ):
        vocab = get_model(model_name).vocabulary
        config = _config(bound)
        base = list(enumerate_tests(vocab, config))
        keyed = []
        for i in range(n_shards):
            current_item, pos = -1, 0
            for item, test in enumerate_shard(
                vocab, config, shard=(i, n_shards)
            ):
                if item != current_item:
                    current_item, pos = item, 0
                else:
                    pos += 1
                keyed.append(((item, pos), test))
        keyed.sort(key=lambda pair: pair[0])
        assert [test for _, test in keyed] == base

    def test_single_shard_is_identity(self):
        vocab = get_model("tso").vocabulary
        config = _config(3)
        assert list(enumerate_tests(vocab, config, shard=(0, 1))) == list(
            enumerate_tests(vocab, config)
        )

    def test_shards_are_disjoint(self):
        vocab = get_model("tso").vocabulary
        config = _config(3)
        a = set(enumerate_tests(vocab, config, shard=(0, 2)))
        b = set(enumerate_tests(vocab, config, shard=(1, 2)))
        # Distinct shards may still contain symmetric twins, but never
        # the same concrete candidate.
        assert not (a & b)

    def test_invalid_shard_specs_rejected(self):
        vocab = get_model("tso").vocabulary
        config = _config(2)
        for bad in [(0, 0), (-1, 2), (2, 2), (5, 3)]:
            with pytest.raises(ValueError):
                next(iter(enumerate_tests(vocab, config, shard=bad)))

    def test_reject_filter_applies_per_shard(self):
        vocab = get_model("tso").vocabulary
        config = _config(3)
        reject = lambda test: len(test.threads) == 1  # noqa: E731
        base = Counter(enumerate_tests(vocab, config, reject=reject))
        sharded: Counter = Counter()
        for i in range(3):
            sharded.update(
                enumerate_tests(vocab, config, reject=reject, shard=(i, 3))
            )
        assert sharded == base
        assert all(len(t.threads) > 1 for t in base)
