"""End-to-end synthesis pipeline tests (paper §5, §6.1)."""

import pytest

from repro.core.canonical import canonical_form
from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.catalog import CATALOG
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def tso_bound4():
    return synthesize(
        get_model("tso"),
        SynthesisOptions(
            bound=4,
            config=EnumerationConfig(max_events=4, max_addresses=2),
        ),
    )


class TestTSOSynthesis:
    def test_classic_tests_emitted(self, tso_bound4):
        union_tests = {canonical_form(t) for t in tso_bound4.union.tests()}
        for name in ("MP", "LB", "S", "2+2W", "CoWW", "CoRR", "CoRW"):
            assert canonical_form(CATALOG[name].test) in union_tests, name

    def test_allowed_patterns_not_emitted(self, tso_bound4):
        union_tests = {canonical_form(t) for t in tso_bound4.union.tests()}
        for name in ("SB", "R", "n6"):
            assert canonical_form(CATALOG[name].test) not in union_tests

    def test_non_minimal_tests_not_emitted(self, tso_bound4):
        union_tests = {canonical_form(t) for t in tso_bound4.union.tests()}
        assert canonical_form(CATALOG["n5"].test) not in union_tests
        assert canonical_form(CATALOG["n4"].test) not in union_tests

    def test_per_axiom_suites_populated(self, tso_bound4):
        assert len(tso_bound4.per_axiom["sc_per_loc"]) == 10  # saturated
        assert len(tso_bound4.per_axiom["causality"]) > 0

    def test_union_at_most_sum(self, tso_bound4):
        total = sum(len(s) for s in tso_bound4.per_axiom.values())
        assert 0 < len(tso_bound4.union) <= total

    def test_union_members_minimal_for_some_axiom(self, tso_bound4):
        for entry in tso_bound4.union:
            assert entry.axioms

    def test_counters(self, tso_bound4):
        assert (
            tso_bound4.candidates
            >= tso_bound4.unique_candidates
            >= tso_bound4.minimal_tests
            == len(tso_bound4.union)
        )

    def test_counts_and_summary(self, tso_bound4):
        counts = tso_bound4.counts()
        assert counts["union"] == len(tso_bound4.union)
        text = tso_bound4.summary()
        assert "union" in text and "tso" in text


class TestSaturation:
    """Paper Fig. 13b: sc_per_loc and rmw_atomicity saturate."""

    def test_sc_per_loc_saturates_at_ten(self):
        counts = {}
        for bound in (4, 5):
            res = synthesize(
                get_model("tso"),
                SynthesisOptions(
                    bound=bound,
                    axioms=["sc_per_loc"],
                    config=EnumerationConfig(
                        max_events=bound, max_addresses=1, max_rmws=0
                    ),
                ),
            )
            counts[bound] = len(res.per_axiom["sc_per_loc"])
        assert counts[4] == counts[5] == 10

    def test_rmw_atomicity_grows_then_saturates(self):
        # bound 4 -> 1 test, bound 5 -> 3 tests; bound 6 stays at 3
        # (asserted in the benchmark harness, where the 34s run lives).
        counts = {}
        for bound in (4, 5):
            res = synthesize(
                get_model("tso"),
                SynthesisOptions(
                    bound=bound,
                    axioms=["rmw_atomicity"],
                    config=EnumerationConfig(
                        max_events=bound, max_addresses=1
                    ),
                ),
            )
            counts[bound] = len(res.per_axiom["rmw_atomicity"])
        assert counts[4] == 1
        assert counts[5] == 3


class TestSynthesisOptions:
    def test_explicit_candidate_stream(self):
        tests = [CATALOG["MP"].test, CATALOG["SB"].test]
        res = synthesize(
            get_model("tso"), SynthesisOptions(bound=4, candidates=tests)
        )
        assert res.candidates == 2
        assert len(res.union) == 1  # only MP is minimal

    def test_single_axiom(self):
        res = synthesize(
            get_model("tso"),
            SynthesisOptions(
                bound=3,
                axioms=["sc_per_loc"],
                config=EnumerationConfig(max_events=3, max_addresses=1),
            ),
        )
        assert list(res.per_axiom) == ["sc_per_loc"]

    def test_progress_callback(self):
        calls = []
        synthesize(
            get_model("tso"),
            SynthesisOptions(
                bound=4,
                config=EnumerationConfig(max_events=4, max_addresses=2),
                progress=calls.append,
            ),
        )
        # at least one progress tick for >1000 candidates... the bound-4
        # space may be smaller; just assert no crash and monotonicity
        assert calls == sorted(calls)

    def test_sc_model_synthesis(self):
        res = synthesize(
            get_model("sc"),
            SynthesisOptions(
                bound=3,
                config=EnumerationConfig(max_events=3, max_addresses=2),
            ),
        )
        union_tests = {canonical_form(t) for t in res.union.tests()}
        assert canonical_form(CATALOG["CoWW"].test) in union_tests
