"""Criterion-mode ablation tests: Fig. 5b vs Fig. 5c vs the Fig. 19
workaround.

The paper's central approximation story: SCC's ``sc`` total order is
chosen *before* relaxations apply under the Fig. 5c encoding, so SB with
two SC fences becomes a false negative (Fig. 18); the ``lone sc``
reversal workaround (Fig. 19) recovers it."""

import pytest

from repro.core.minimality import (
    CriterionMode,
    MinimalityChecker,
    perturb_execution,
)
from repro.litmus.catalog import CATALOG
from repro.litmus.events import FenceKind, fence, read, write
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model
from repro.relax.base import remove_event


def sb_fence_sc():
    f = fence(FenceKind.FENCE_SC)
    return LitmusTest(
        (
            (write(0, 1), f, read(1)),
            (write(1, 1), f, read(0)),
        ),
        name="SB+FenceSCs",
    )


class TestFig18Fig19:
    def test_sb_minimal_in_exact_mode(self):
        checker = MinimalityChecker(get_model("scc"), CriterionMode.EXACT)
        assert checker.check(sb_fence_sc()).is_minimal

    def test_sb_false_negative_in_execution_mode(self):
        """Fig. 18b: with sc fixed before relaxing, SB fails Fig. 5c."""
        checker = MinimalityChecker(
            get_model("scc"), CriterionMode.EXECUTION
        )
        assert not checker.check(sb_fence_sc()).is_minimal

    def test_workaround_recovers_sb(self):
        """Fig. 19: trying both sc orientations recovers the test."""
        checker = MinimalityChecker(
            get_model("scc"), CriterionMode.EXECUTION_WA
        )
        assert checker.check(sb_fence_sc()).is_minimal


class TestModeAgreementOnTSO:
    """For models without auxiliary quantified relations the modes agree
    on the classic tests (the paper argues co-ambiguity needs >= 3 writes
    to one address)."""

    @pytest.mark.parametrize(
        "name", ["MP", "SB", "LB", "S", "2+2W", "CoRR", "CoRW", "n5"]
    )
    def test_same_verdict(self, name):
        test = CATALOG[name].test
        exact = MinimalityChecker(get_model("tso"), CriterionMode.EXACT)
        approx = MinimalityChecker(
            get_model("tso"), CriterionMode.EXECUTION
        )
        assert (
            exact.check(test).is_minimal == approx.check(test).is_minimal
        )


class TestPerturbExecution:
    def test_ri_perturbation_reindexes(self):
        test = CATALOG["MP"].test
        from repro.semantics.enumerate import enumerate_executions

        ex = next(
            e
            for e in enumerate_executions(test)
            if e.rf_map == {2: 1, 3: 0}
        )
        relaxed = remove_event(test, 0)
        perturbed = perturb_execution(ex, relaxed)
        assert perturbed.test is relaxed.test
        # read of x (orig 3) lost its source (orig 0 removed) -> initial
        assert perturbed.rf_map == {1: 0, 2: None}

    def test_co_interior_repair(self):
        """Fig. 8: dropping a co-middle write keeps the rest ordered."""
        test = LitmusTest(((write(0, 1), write(0, 2), write(0, 3)),))
        from repro.litmus.execution import Execution

        ex = Execution(test, (), ((0, 1, 2),))
        relaxed = remove_event(test, 1)
        perturbed = perturb_execution(ex, relaxed)
        assert perturbed.co == ((0, 1),)  # old events 0 and 2, renumbered

    def test_sc_filtered(self):
        test = sb_fence_sc()
        from repro.litmus.execution import Execution

        ex = Execution(
            test,
            ((2, None), (5, None)),
            ((0,), (3,)),
            sc=(1, 4),
        )
        relaxed = remove_event(test, 1)
        perturbed = perturb_execution(ex, relaxed)
        assert perturbed.sc == (3,)
