"""TestSuite container tests."""

from repro.core.suite import TestSuite
from repro.litmus.catalog import CATALOG
from repro.litmus.events import Order, read, write
from repro.litmus.test import LitmusTest


def entry(name):
    e = CATALOG[name]
    return e.test, e.forbidden


class TestSuiteBasics:
    def test_add_and_len(self):
        suite = TestSuite("tso")
        test, witness = entry("MP")
        assert suite.add(test, witness, ["causality"])
        assert len(suite) == 1

    def test_symmetric_duplicates_merge(self):
        suite = TestSuite("tso")
        test, witness = entry("MP")
        permuted = LitmusTest(tuple(reversed(test.threads)))
        from repro.litmus.execution import Outcome

        suite.add(test, witness, ["causality"])
        # re-adding a symmetric variant merges axiom sets instead
        added = suite.add(
            permuted,
            Outcome(((0, 2), (1, 3)), ((0, 2), (1, 3))),
            ["sc_per_loc"],
        )
        assert not added
        assert len(suite) == 1
        only = next(iter(suite))
        assert only.axioms == {"causality", "sc_per_loc"}

    def test_contains(self):
        suite = TestSuite("tso")
        test, witness = entry("MP")
        suite.add(test, witness, ["causality"])
        assert test in suite
        assert LitmusTest(tuple(reversed(test.threads))) in suite
        assert entry("SB")[0] not in suite

    def test_count_by_size(self):
        suite = TestSuite("tso")
        for name in ("MP", "CoWW", "CoRR"):
            suite.add(*entry(name), ["a"])
        assert suite.count_by_size() == {2: 1, 3: 1, 4: 1}

    def test_for_axiom(self):
        suite = TestSuite("tso")
        suite.add(*entry("MP"), ["causality"])
        suite.add(*entry("CoWW"), ["sc_per_loc"])
        assert len(suite.for_axiom("causality")) == 1

    def test_merge(self):
        a = TestSuite("tso")
        b = TestSuite("tso")
        a.add(*entry("MP"), ["x"])
        b.add(*entry("SB"), ["y"])
        b.add(*entry("MP"), ["z"])
        a.merge(b)
        assert len(a) == 2

    def test_witness_remapped_to_canonical_ids(self):
        suite = TestSuite("scc")
        t = LitmusTest(
            (
                (read(1, Order.ACQ), read(0)),
                (write(0, 1), write(1, 1, Order.REL)),
            )
        )
        from repro.litmus.catalog import outcome_from_values

        witness = outcome_from_values(t, reads={0: 1, 1: 0})
        suite.add(t, witness, ["causality"])
        stored = next(iter(suite))
        # canonical form puts the writer thread first; the witness must
        # still name valid read events of the canonical test
        for eid, _ in stored.witness.rf_sources:
            assert stored.test.instruction(eid).is_read

    def test_pretty(self):
        suite = TestSuite("tso")
        suite.add(*entry("MP"), ["causality"])
        text = next(iter(suite)).pretty()
        assert "Forbidden" in text and "causality" in text


class TestSerialization:
    def roundtrip(self, suite):
        return TestSuite.from_json(suite.to_json())

    def test_roundtrip_preserves_tests(self):
        suite = TestSuite("tso", "causality")
        for name in ("MP", "LB", "CoRW"):
            suite.add(*entry(name), ["causality"])
        loaded = self.roundtrip(suite)
        assert len(loaded) == len(suite)
        assert {canonical(t) for t in loaded.tests()} == {
            canonical(t) for t in suite.tests()
        }

    def test_roundtrip_with_rmw_and_deps(self):
        suite = TestSuite("power")
        suite.add(*entry("LB+addrs"), ["no_thin_air"])
        suite.add(*entry("n3"), ["causality"])
        loaded = self.roundtrip(suite)
        assert len(loaded) == 2
        tests = loaded.tests()
        assert any(t.rmw for t in tests)
        assert any(t.deps for t in tests)

    def test_roundtrip_metadata(self):
        suite = TestSuite("tso", "union")
        suite.add(*entry("MP"), ["causality", "sc_per_loc"])
        loaded = self.roundtrip(suite)
        assert loaded.model_name == "tso"
        assert next(iter(loaded)).axioms == {"causality", "sc_per_loc"}

    def test_save_load(self, tmp_path):
        suite = TestSuite("tso")
        suite.add(*entry("MP"), ["causality"])
        path = tmp_path / "suite.json"
        suite.save(path)
        loaded = TestSuite.load(path)
        assert len(loaded) == 1

    def test_save_litmus_dir(self, tmp_path):
        from repro.litmus.format import parse_test

        suite = TestSuite("tso")
        suite.add(*entry("MP"), ["causality"])
        suite.add(*entry("CoWW"), ["sc_per_loc"])
        files = suite.save_litmus_dir(tmp_path / "suite")
        assert len(files) == 2
        for name in files:
            text = (tmp_path / "suite" / name).read_text()
            test, outcome = parse_test(text)
            assert outcome is not None

    def test_repr(self):
        suite = TestSuite("tso", "union")
        assert "tso" in repr(suite)


def canonical(test):
    from repro.core.canonical import canonical_form

    return canonical_form(test)
