"""Failure injection: the pipeline must surface broken inputs loudly.

These tests deliberately feed wrong models, degenerate tests, and
inconsistent suites through the machinery and check it fails (or
degrades) the way a user needs it to."""

import pytest

from repro.core.compare import compare_suites
from repro.core.minimality import MinimalityChecker
from repro.core.suite import TestSuite
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.catalog import CATALOG
from repro.litmus.events import read, write
from repro.litmus.test import LitmusTest
from repro.models.base import MemoryModel, Vocabulary
from repro.models.registry import get_model


class PermissiveModel(MemoryModel):
    """A model that allows everything (a maximally buggy spec)."""

    name = "permissive"
    full_name = "allows every execution"

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(allows_rmw=True)

    def axioms(self):
        return {"anything_goes": lambda v: True}


class ContradictoryModel(MemoryModel):
    """A model that forbids everything (an unimplementable spec)."""

    name = "contradictory"
    full_name = "forbids every execution"

    @property
    def vocabulary(self) -> Vocabulary:
        return Vocabulary(allows_rmw=True)

    def axioms(self):
        return {"nothing_goes": lambda v: False}


class TestDegenerateModels:
    def test_permissive_model_has_no_minimal_tests(self):
        """No forbidden outcomes -> empty suites, not a crash."""
        checker = MinimalityChecker(PermissiveModel())
        for name in ("MP", "SB", "CoWW"):
            result = checker.check(CATALOG[name].test)
            assert not result.is_minimal
            assert result.forbidden_count == 0

    def test_contradictory_model_has_no_minimal_tests(self):
        """Everything forbidden means relaxing never makes an outcome
        observable -> also empty suites."""
        checker = MinimalityChecker(ContradictoryModel())
        for name in ("MP", "CoWW"):
            assert not checker.check(CATALOG[name].test).is_minimal

    def test_synthesis_with_degenerate_models(self):
        from repro.core.enumerator import EnumerationConfig

        config = EnumerationConfig(max_events=3, max_addresses=1)
        for model in (PermissiveModel(), ContradictoryModel()):
            result = synthesize(model, SynthesisOptions(bound=3, config=config))
            assert len(result.union) == 0


class TestDegenerateInputs:
    def test_unknown_axiom_name(self):
        checker = MinimalityChecker(get_model("tso"))
        with pytest.raises(KeyError):
            checker.check(CATALOG["MP"].test, "no_such_axiom")

    def test_single_event_test(self):
        checker = MinimalityChecker(get_model("tso"))
        t = LitmusTest(((write(0, 1),),))
        result = checker.check(t)
        assert not result.is_minimal
        assert result.application_count == 0

    def test_read_only_test(self):
        """All-reads tests have one outcome (all zeros) and nothing
        forbidden."""
        checker = MinimalityChecker(get_model("tso"))
        t = LitmusTest(((read(0), read(0)), (read(0),)))
        result = checker.check(t)
        assert not result.is_minimal
        assert result.forbidden_count == 0

    def test_comparison_against_wrong_model_suite(self):
        """Comparing Power reference tests against a TSO-synthesized
        suite must report gaps rather than silently passing."""
        tso = get_model("tso")
        suite = TestSuite("tso")
        suite.add(
            CATALOG["MP"].test, CATALOG["MP"].forbidden, ["causality"]
        )
        reference = [CATALOG["MP+sync+addr"]]
        comparison = compare_suites(reference, suite, tso)
        assert not comparison.both
        # MP+sync+addr does contain MP (drop the fence and the dep)...
        # under TSO's vocabulary RD/DF don't exist, but RI still reaches
        # it; either way the report must mention the test
        assert "MP+sync+addr" in comparison.reference_only

    def test_suite_json_rejects_garbage(self):
        with pytest.raises(Exception):
            TestSuite.from_json("{not json")
        with pytest.raises(Exception):
            TestSuite.from_json('{"model": "tso", "tests": [{"bad": 1}]}')
