"""The paper's Fig. 3 walkthrough, step by step.

Fig. 3 shows why MP satisfies the minimality criterion: the forbidden
outcome (r1=1, r2=0) becomes observable under RI applied to each of the
four instructions — including the subtle Fig. 3d case where removing the
flag's store orphans the flag read."""

import pytest

from repro.core.oracle import ExplicitOracle
from repro.litmus.catalog import CATALOG, outcome_from_values
from repro.litmus.execution import project_outcome
from repro.models.registry import get_model
from repro.relax.instruction import RemoveInstruction


@pytest.fixture(scope="module")
def setup():
    tso = get_model("tso")
    mp = CATALOG["MP"].test
    # (r2=1, r3=0) plus the implied finals — the full forbidden outcome
    forbidden = outcome_from_values(
        mp, reads={2: 1, 3: 0}, finals={0: 1, 1: 1}
    )
    return tso, mp, forbidden, ExplicitOracle(tso)


def apply_ri(tso, mp, target):
    ri = RemoveInstruction()
    app = next(
        a for a in ri.applications(mp, tso.vocabulary) if a.target == target
    )
    return ri.apply(mp, app, tso.vocabulary)


class TestFig3:
    def test_baseline_outcome_forbidden(self, setup):
        tso, mp, forbidden, oracle = setup
        assert not oracle.observable(mp, forbidden)

    def test_fig3a_remove_data_store(self, setup):
        """Removing St [data]: (r1=1, r2=0) becomes observable 'even
        under sequential consistency'."""
        tso, mp, forbidden, oracle = setup
        relaxed = apply_ri(tso, mp, 0)
        projected = project_outcome(forbidden, relaxed.event_map)
        assert oracle.observable(relaxed.test, projected)
        sc_oracle = ExplicitOracle(get_model("sc"))
        assert sc_oracle.observable(relaxed.test, projected)

    def test_fig3b_remove_flag_read(self, setup):
        """Removing the first load: 'matches (r1=1, r2=0) with r1
        removed'."""
        tso, mp, forbidden, oracle = setup
        relaxed = apply_ri(tso, mp, 2)
        projected = project_outcome(forbidden, relaxed.event_map)
        # r2 (orig event 2) is gone from the constraint
        assert all(
            eid != relaxed.event_map[2] for eid, _ in projected.rf_sources
        )
        assert oracle.observable(relaxed.test, projected)

    def test_fig3c_remove_data_read(self, setup):
        tso, mp, forbidden, oracle = setup
        relaxed = apply_ri(tso, mp, 3)
        projected = project_outcome(forbidden, relaxed.event_map)
        assert oracle.observable(relaxed.test, projected)

    def test_fig3d_remove_flag_store_orphans_read(self, setup):
        """The interesting case: removing St [flag] leaves the flag read
        'orphaned and hence free to choose any other value' — the
        projection drops its constraint rather than retargeting it."""
        tso, mp, forbidden, oracle = setup
        relaxed = apply_ri(tso, mp, 1)
        projected = project_outcome(forbidden, relaxed.event_map)
        new_flag_read = relaxed.event_map[2]
        assert all(eid != new_flag_read for eid, _ in projected.rf_sources)
        assert oracle.observable(relaxed.test, projected)

    def test_conclusion_mp_is_minimal(self, setup):
        from repro.core.minimality import MinimalityChecker

        tso, mp, forbidden, oracle = setup
        assert MinimalityChecker(tso).check(mp).is_minimal
