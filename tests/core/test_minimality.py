"""Minimality criterion tests — the paper's §3 walk-throughs."""

import pytest

from repro.core.minimality import MinimalityChecker
from repro.litmus.catalog import CATALOG
from repro.litmus.events import Order, read, write
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def tso_checker():
    return MinimalityChecker(get_model("tso"))


@pytest.fixture(scope="module")
def scc_checker():
    return MinimalityChecker(get_model("scc"))


class TestPaperWalkthroughs:
    def test_mp_minimal_under_tso(self, tso_checker):
        """Paper Fig. 3: MP satisfies the criterion via RI."""
        result = tso_checker.check(CATALOG["MP"].test)
        assert result.is_minimal
        assert result.witness is not None
        # the witness is the classic (r=1, r2=0) outcome
        values = result.witness.pretty(CATALOG["MP"].test)
        assert "r2=1" in values and "r3=0" in values

    def test_mp_with_extra_synchronization_not_minimal(self, scc_checker):
        """Paper Fig. 2: two releases + two acquires is redundant."""
        over = LitmusTest(
            (
                (write(0, 1, Order.REL), write(1, 1, Order.REL)),
                (read(1, Order.ACQ), read(0, Order.ACQ)),
            )
        )
        minimal_mp = LitmusTest(
            (
                (write(0, 1), write(1, 1, Order.REL)),
                (read(1, Order.ACQ), read(0)),
            )
        )
        assert not scc_checker.check(over).is_minimal
        assert scc_checker.check(minimal_mp).is_minimal

    def test_corw_minimal(self, tso_checker):
        """Paper Fig. 7 / §4.3: CoRW survives RI on every instruction."""
        assert tso_checker.check(CATALOG["CoRW"].test).is_minimal

    def test_n5_not_minimal(self, tso_checker):
        """Paper Fig. 10: n5/coLB fails the criterion (contains CoRW)."""
        result = tso_checker.check(CATALOG["n5"].test)
        assert not result.is_minimal
        assert result.forbidden_count > 0  # forbidden, just not minimal

    def test_allowed_test_not_minimal(self, tso_checker):
        """SB has no forbidden outcome under TSO at all."""
        result = tso_checker.check(CATALOG["SB"].test)
        assert not result.is_minimal
        assert result.forbidden_count == 0

    def test_per_axiom_checks(self, tso_checker):
        corr = CATALOG["CoRR"].test
        assert tso_checker.check(corr, "sc_per_loc").is_minimal
        assert not tso_checker.check(corr, "rmw_atomicity").is_minimal

    def test_sb_mfences_minimal_for_causality(self, tso_checker):
        sb = CATALOG["SB+mfences"].test
        assert tso_checker.check(sb, "causality").is_minimal

    def test_result_bool(self, tso_checker):
        assert bool(tso_checker.check(CATALOG["MP"].test))
        assert not bool(tso_checker.check(CATALOG["SB"].test))


class TestApplications:
    def test_application_enumeration(self, tso_checker):
        apps = tso_checker.applications(CATALOG["SB+mfences"].test)
        names = [r.name for r, _ in apps]
        assert names.count("RI") == 6
        assert "DRMW" not in names  # no rmw in the test

    def test_power_applications_include_rd_df(self):
        checker = MinimalityChecker(get_model("power"))
        apps = checker.applications(CATALOG["MP+sync+addr"].test)
        names = {r.name for r, _ in apps}
        assert {"RI", "DF", "RD"} <= names


class TestPowerSection62:
    @pytest.fixture(scope="class")
    def power_checker(self):
        return MinimalityChecker(get_model("power"))

    def test_ppoaa_sync_not_minimal(self, power_checker):
        """§6.2: PPOAA as published (sync) is not minimal..."""
        assert not power_checker.check(CATALOG["PPOAA"].test).is_minimal

    def test_ppoaa_lwsync_minimal(self, power_checker):
        """...but its lwsync variant is."""
        assert power_checker.check(
            CATALOG["PPOAA+lwsync"].test
        ).is_minimal

    def test_mp_sync_addr_not_minimal_sync_too_strong(self, power_checker):
        """MP+sync+addr: lwsync suffices on the writer side."""
        assert not power_checker.check(
            CATALOG["MP+sync+addr"].test
        ).is_minimal

    def test_mp_lwsync_addr_minimal(self, power_checker):
        assert power_checker.check(
            CATALOG["MP+lwsync+addr"].test
        ).is_minimal

    def test_lb_addrs_minimal(self, power_checker):
        assert power_checker.check(CATALOG["LB+addrs"].test).is_minimal

    def test_sb_syncs_minimal(self, power_checker):
        assert power_checker.check(CATALOG["SB+syncs"].test).is_minimal


class TestEdgeCases:
    def test_single_instruction_never_minimal(self, tso_checker):
        t = LitmusTest(((write(0, 1),),))
        assert not tso_checker.check(t).is_minimal

    def test_fence_only_synchronization_counted(self, tso_checker):
        # R+mfence is minimal: removing the fence re-allows the outcome.
        assert tso_checker.check(CATALOG["R+mfence"].test).is_minimal

    def test_relaxed_tests_recorded_for_witness(self, tso_checker):
        result = tso_checker.check(CATALOG["MP"].test)
        assert len(result.relaxed_tests) == result.application_count
