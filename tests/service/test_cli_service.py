"""The serve/submit/jobs CLI triple and `synthesize --server`."""

import asyncio
import json
import threading

import pytest

from repro.cli import main
from repro.service.jobs import JobManager
from repro.service.server import serve_async


@pytest.fixture
def daemon(tmp_path):
    """Daemon on a unix socket; yields the address for --server flags."""
    socket_path = str(tmp_path / "repro.sock")
    manager = JobManager(workers=1, cnf_cache_dir=str(tmp_path / "cnf"))
    ready = threading.Event()
    stop = asyncio.Event()
    loop_holder: list[asyncio.AbstractEventLoop] = []

    async def run() -> None:
        loop_holder.append(asyncio.get_running_loop())
        await serve_async(
            manager,
            socket_path=socket_path,
            ready=lambda addr: ready.set(),
            stop=stop,
        )

    thread = threading.Thread(target=lambda: asyncio.run(run()), daemon=True)
    thread.start()
    assert ready.wait(10), "daemon never came up"
    yield socket_path
    loop_holder[0].call_soon_threadsafe(stop.set)
    thread.join(5)
    manager.close()


TINY = ["--model", "tso", "--bound", "2", "--max-addresses", "1"]


class TestSubmit:
    def test_submit_then_poll(self, daemon, capsys):
        assert main(["submit", "--server", daemon, *TINY]) == 0
        out = capsys.readouterr().out
        assert "job-0001" in out
        assert f"poll with: repro jobs --server {daemon}" in out

        assert main(["jobs", "--server", daemon]) == 0
        listing = capsys.readouterr().out
        assert "job-0001" in listing

    def test_submit_wait_prints_summary(self, daemon, capsys):
        assert main(["submit", "--server", daemon, "--wait", *TINY]) == 0
        out = capsys.readouterr().out
        assert "union" in out

    def test_submit_json_envelope_carries_dedup_flag(self, daemon, capsys):
        assert main(["submit", "--server", daemon, "--json", *TINY]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"]["name"] == "job-status"
        assert doc["payload"]["deduped"] is False
        assert doc["payload"]["model"] == "tso"

    def test_submit_wait_json_is_job_result_envelope(self, daemon, capsys):
        args = ["submit", "--server", daemon, "--wait", "--json", *TINY]
        assert main(args) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"]["name"] == "job-result"
        assert doc["payload"]["state"] == "done"
        assert doc["payload"]["result"]["union"]["tests"]


class TestJobs:
    def test_status_shows_metrics(self, daemon, capsys):
        main(["submit", "--server", daemon, "--wait", *TINY])
        capsys.readouterr()
        assert main(["jobs", "--server", daemon, "--status", "job-0001"]) == 0
        out = capsys.readouterr().out
        assert "done" in out

    def test_metrics_text_mode(self, daemon, capsys):
        main(["submit", "--server", daemon, "--wait", *TINY])
        capsys.readouterr()
        assert main(["jobs", "--server", daemon, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "jobs_finished = 1" in out
        assert "dedup_hits = 0" in out

    def test_metrics_json_envelope(self, daemon, capsys):
        assert main(["jobs", "--server", daemon, "--metrics", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"]["name"] == "service-metrics"
        assert "jobs_submitted" in doc["payload"]["metrics"]

    def test_empty_listing(self, daemon, capsys):
        assert main(["jobs", "--server", daemon]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_jobs_json_listing_envelope(self, daemon, capsys):
        main(["submit", "--server", daemon, *TINY])
        capsys.readouterr()
        assert main(["jobs", "--server", daemon, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"]["name"] == "job-list"
        assert len(doc["payload"]["jobs"]) == 1

    def test_unknown_job_is_exit_2(self, daemon, capsys):
        code = main(["jobs", "--server", daemon, "--status", "job-9999"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {daemon}: ")
        assert "unknown job" in err


class TestServerErrors:
    def test_unreachable_server_is_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nothing.sock")
        code = main(["submit", "--server", missing, *TINY])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {missing}: ")

    def test_synthesize_unreachable_server_is_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nothing.sock")
        code = main(["synthesize", *TINY, "--server", missing])
        assert code == 2
        assert capsys.readouterr().err.startswith(f"error: {missing}: ")

    def test_serve_needs_exactly_one_transport(self, capsys):
        assert main(["serve"]) == 2
        assert "exactly one of" in capsys.readouterr().err
        assert main(["serve", "--socket", "/tmp/x.sock", "--port", "1"]) == 2
        assert "exactly one of" in capsys.readouterr().err


class TestRemoteSynthesize:
    def test_server_run_byte_identical_to_local(self, daemon, tmp_path, capsys):
        flags = ["--model", "tso", "--bound", "3", "--max-addresses", "1"]
        local_out = str(tmp_path / "local.json")
        remote_out = str(tmp_path / "remote.json")
        assert main(["synthesize", *flags, "--out", local_out]) == 0
        assert (
            main(
                [
                    "synthesize",
                    *flags,
                    "--server",
                    daemon,
                    "--out",
                    remote_out,
                ]
            )
            == 0
        )
        capsys.readouterr()
        with open(local_out, "rb") as fh:
            local_bytes = fh.read()
        with open(remote_out, "rb") as fh:
            remote_bytes = fh.read()
        assert local_bytes == remote_bytes

    def test_server_json_summary_matches_local_suite(self, daemon, capsys):
        flags = [*TINY, "--json"]
        assert main(["synthesize", *flags]) == 0
        local = json.loads(capsys.readouterr().out)
        assert main(["synthesize", *flags, "--server", daemon]) == 0
        remote = json.loads(capsys.readouterr().out)
        for key in ("model", "bound", "minimal_tests", "suite_counts"):
            assert remote["payload"][key] == local["payload"][key]
