"""Server/client integration over a real unix socket."""

import asyncio
import json
import threading

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import OracleSpec, SynthesisOptions, synthesize
from repro.models.registry import get_model
from repro.obs import load_report
from repro.service.client import Client, ServiceError, parse_address
from repro.service.jobs import JobManager
from repro.service.protocol import SynthesisRequest
from repro.service.server import serve_async


@pytest.fixture
def daemon(tmp_path):
    """A running daemon on a unix socket; yields (client, manager)."""
    socket_path = str(tmp_path / "repro.sock")
    manager = JobManager(workers=1, cnf_cache_dir=str(tmp_path / "cnf"))
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            serve_async(
                manager,
                socket_path=socket_path,
                ready=lambda addr: ready.set(),
            )
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "daemon never came up"
    client = Client(socket_path, timeout=60)
    yield client, manager
    try:
        client.shutdown()
    except ServiceError:
        pass
    thread.join(5)
    manager.close()


def tiny_options(bound: int = 2, **knobs) -> SynthesisOptions:
    knobs.setdefault("config", EnumerationConfig(max_events=bound))
    return SynthesisOptions(bound=bound, **knobs)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("localhost:8765") == (None, "localhost", 8765)
        assert parse_address("127.0.0.1:80") == (None, "127.0.0.1", 80)

    def test_unix_paths(self):
        assert parse_address("/tmp/repro.sock") == ("/tmp/repro.sock", "", None)
        assert parse_address("./daemon.sock") == ("./daemon.sock", "", None)
        # a path with a colon is still a path
        assert parse_address("/tmp/a:b/x.sock")[0] == "/tmp/a:b/x.sock"


class TestWireProtocol:
    def test_ping(self, daemon):
        client, _ = daemon
        assert client.ping()

    def test_submit_status_result(self, daemon):
        client, _ = daemon
        status, deduped = client.submit(
            SynthesisRequest("tso", tiny_options())
        )
        assert not deduped
        assert status.job_id
        result = client.result(status.job_id, timeout=60)
        assert result.state == "done"
        assert len(result.result.union) > 0
        assert client.status(status.job_id).state == "done"
        listed = client.jobs()
        assert [s.job_id for s in listed] == [status.job_id]

    def test_synthesize_round_trip_byte_identical(self, daemon):
        client, _ = daemon
        options = tiny_options(
            bound=3, oracle_spec=OracleSpec(oracle="relational")
        )
        remote = client.synthesize("tso", options)
        local = synthesize(get_model("tso"), options)
        assert remote.union.to_json() == local.union.to_json()
        for name in local.per_axiom:
            assert (
                remote.per_axiom[name].to_json()
                == local.per_axiom[name].to_json()
            )

    def test_metrics_exposed(self, daemon):
        client, _ = daemon
        client.synthesize("tso", tiny_options())
        metrics = client.metrics()
        assert metrics["jobs_finished"] >= 1
        assert "dedup_hits" in metrics
        assert "worker_warm_misses" in metrics

    def test_unknown_job_is_service_error(self, daemon):
        client, _ = daemon
        with pytest.raises(ServiceError, match="unknown job"):
            client.status("job-9999")

    def test_unknown_op_is_service_error(self, daemon):
        client, _ = daemon
        with pytest.raises(ServiceError, match="unknown op"):
            client.call("frobnicate")

    def test_malformed_request_payload_is_service_error(self, daemon):
        client, _ = daemon
        with pytest.raises(ServiceError, match="model"):
            client.call("submit", request={"options": {"bound": 2}})

    def test_unreachable_daemon(self, tmp_path):
        client = Client(str(tmp_path / "nothing.sock"), timeout=1)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.ping()


class TestRawWire:
    """Drive the socket by hand: the envelope contract, not the client."""

    def _exchange(self, daemon, line: bytes) -> dict:
        import socket as socketlib

        client, _ = daemon
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(client.address)
        try:
            sock.sendall(line)
            chunks = b""
            while not chunks.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks += chunk
        finally:
            sock.close()
        return json.loads(chunks.decode())

    def test_non_envelope_line_answers_service_error(self, daemon):
        doc = self._exchange(daemon, b'{"op": "ping"}\n')
        report = load_report(doc)
        assert report.schema_name == "service-error"
        assert "envelope" in report.payload["error"]

    def test_garbage_line_answers_service_error(self, daemon):
        doc = self._exchange(daemon, b"not json\n")
        assert load_report(doc).schema_name == "service-error"

    def test_wrong_schema_name_rejected(self, daemon):
        bad = {
            "schema": {"name": "synthesis-request", "version": 1},
            "tool": "litmus-synth",
            "command": "service",
            "payload": {"op": "ping"},
        }
        doc = self._exchange(daemon, json.dumps(bad).encode() + b"\n")
        report = load_report(doc)
        assert report.schema_name == "service-error"
        assert "service-request" in report.payload["error"]

    def test_every_response_is_an_envelope(self, daemon):
        client, _ = daemon
        for op in ("ping", "jobs", "metrics"):
            report = client.call(op)
            doc = report.to_json_dict()
            assert set(doc) == {"schema", "tool", "command", "payload"}
            assert doc["tool"] == "litmus-synth"


class TestTcpTransport:
    def test_tcp_round_trip(self):
        manager = JobManager(workers=1)
        ready: list[str] = []
        ready_event = threading.Event()

        def on_ready(address: str) -> None:
            ready.append(address)
            ready_event.set()

        thread = threading.Thread(
            target=lambda: asyncio.run(
                serve_async(manager, port=0, ready=on_ready)
            ),
            daemon=True,
        )
        thread.start()
        assert ready_event.wait(10)
        client = Client(ready[0], timeout=30)
        try:
            assert client.ping()
            result = client.synthesize("tso", tiny_options())
            assert len(result.union) > 0
        finally:
            client.shutdown()
            thread.join(5)
            manager.close()
