"""Wire-protocol round trips: requests, statuses, results."""

import json

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.minimality import CriterionMode
from repro.core.synthesis import (
    EARLY_REJECT,
    OracleSpec,
    SynthesisOptions,
    synthesize,
)
from repro.models.registry import get_model
from repro.obs import load_report
from repro.service.protocol import (
    JobResult,
    JobState,
    JobStatus,
    SynthesisRequest,
    result_from_payload,
    result_to_payload,
)


def _request(**knobs) -> SynthesisRequest:
    return SynthesisRequest.build("tso", bound=3, **knobs)


class TestSynthesisRequest:
    def test_payload_round_trip(self):
        req = _request(
            axioms=["sc_per_loc"],
            mode=CriterionMode.EXACT,
            config=EnumerationConfig(max_events=3, max_addresses=1),
            oracle_spec=OracleSpec(oracle="relational", prefilter=True),
            reject=EARLY_REJECT,
        )
        back = SynthesisRequest.from_payload(req.to_payload())
        # axioms normalize to a tuple on the way in, so compare the
        # canonical wire forms (which is also what the fingerprint sees)
        assert back.to_payload() == req.to_payload()
        assert back.fingerprint() == req.fingerprint()
        assert back.options.config == req.options.config
        assert back.options.mode is req.options.mode

    def test_fingerprint_is_content_derived_and_stable(self):
        a = _request(oracle_spec=OracleSpec(oracle="relational"))
        b = SynthesisRequest(
            "tso",
            SynthesisOptions(
                bound=3, oracle_spec=OracleSpec(oracle="relational")
            ),
        )
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != _request().fingerprint()
        assert (
            a.fingerprint()
            != SynthesisRequest.build(
                "sc", bound=3, oracle_spec=OracleSpec(oracle="relational")
            ).fingerprint()
        )

    def test_json_serializable(self):
        payload = _request(config=EnumerationConfig(max_events=3)).to_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_local_only_candidates_rejected(self):
        req = SynthesisRequest(
            "tso", SynthesisOptions(bound=3, candidates=[])
        )
        with pytest.raises(ValueError, match="process-local"):
            req.to_payload()

    def test_local_only_progress_rejected(self):
        req = SynthesisRequest(
            "tso", SynthesisOptions(bound=3, progress=lambda n: None)
        )
        with pytest.raises(ValueError, match="process-local"):
            req.to_payload()

    def test_custom_reject_callable_rejected(self):
        req = SynthesisRequest(
            "tso", SynthesisOptions(bound=3, reject=lambda t: False)
        )
        with pytest.raises(ValueError, match="EARLY_REJECT"):
            req.to_payload()

    def test_early_reject_sentinel_survives(self):
        req = _request(reject=EARLY_REJECT)
        back = SynthesisRequest.from_payload(req.to_payload())
        assert back.options.reject == EARLY_REJECT

    def test_unknown_field_rejected(self):
        payload = _request().to_payload()
        payload["options"]["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            SynthesisRequest.from_payload(payload)

    def test_missing_model_rejected(self):
        with pytest.raises(ValueError, match="model"):
            SynthesisRequest.from_payload({"options": {"bound": 3}})

    def test_report_envelope(self):
        report = _request().to_report()
        back = load_report(json.loads(json.dumps(report.to_json_dict())))
        assert back.schema_name == "synthesis-request"
        assert SynthesisRequest.from_payload(back.payload) == _request()


class TestJobStatus:
    def test_round_trip(self):
        status = JobStatus(
            job_id="job-0001",
            state=JobState.RUNNING.value,
            fingerprint="abc",
            model="tso",
            bound=4,
            clients=3,
            position=None,
            queue_seconds=0.25,
            worker=1,
            metrics={"compile_hits": 2},
        )
        back = JobStatus.from_payload(
            json.loads(json.dumps(status.to_payload()))
        )
        assert back == status

    def test_summary_mentions_dedup_clients(self):
        status = JobStatus(
            job_id="job-0001",
            state="queued",
            fingerprint="abc",
            model="tso",
            bound=4,
            clients=2,
            position=0,
        )
        text = status.summary()
        assert "clients=2" in text and "position=0" in text


class TestResultRoundTrip:
    def test_suites_reconstruct_byte_identical(self):
        result = synthesize(
            get_model("tso"),
            SynthesisOptions(
                bound=3,
                config=EnumerationConfig(max_events=3, max_addresses=1),
            ),
        )
        payload = json.loads(json.dumps(result_to_payload(result)))
        back = result_from_payload(payload)
        assert back.union.to_json() == result.union.to_json()
        assert set(back.per_axiom) == set(result.per_axiom)
        for name, suite in result.per_axiom.items():
            assert back.per_axiom[name].to_json() == suite.to_json()
        assert back.minimal_tests == result.minimal_tests
        assert back.oracle_stats == result.oracle_stats

    def test_job_result_round_trip(self):
        result = synthesize(
            get_model("tso"),
            SynthesisOptions(
                bound=2, config=EnumerationConfig(max_events=2)
            ),
        )
        job = JobResult(job_id="job-0001", state="done", result=result)
        back = JobResult.from_payload(
            json.loads(json.dumps(job.to_payload()))
        )
        assert back.result is not None
        assert back.result.union.to_json() == result.union.to_json()

    def test_failed_job_result_carries_error_only(self):
        job = JobResult(job_id="job-0002", state="failed", error="boom")
        back = JobResult.from_payload(job.to_payload())
        assert back.result is None
        assert back.error == "boom"
