"""The process-backed worker pool: byte-identity across pool species,
streamed progress events, per-client quotas, and mid-job child death."""

import asyncio
import contextlib
import os
import signal
import threading
import time

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import OracleSpec, synthesize
from repro.exec.fanout import (
    RemoteJobError,
    ResidentProcess,
    ResidentTask,
    WorkerDied,
)
from repro.models.registry import get_model
from repro.service.client import Client, ServiceError
from repro.service.jobs import JobManager
from repro.service.pool import ProcessResidentWorker
from repro.service.protocol import (
    JobProgress,
    JobState,
    QuotaExceededError,
    SynthesisRequest,
    result_from_payload,
    result_to_payload,
)
from repro.service.server import serve_async


def tiny_request(bound: int = 2, **knobs) -> SynthesisRequest:
    knobs.setdefault("config", EnumerationConfig(max_events=bound))
    return SynthesisRequest.build("tso", bound=bound, **knobs)


class BlockingStub:
    """Thread-pool stub that parks until released — quota tests need a
    deterministically wedged queue."""

    index = 0

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def run(self, request, progress=None):
        self.started.set()
        assert self.release.wait(30), "test never released the worker"
        result = synthesize(get_model(request.model), request.options)
        return result, {}

    def as_metrics(self):
        return {"worker_jobs": 0}


@contextlib.contextmanager
def daemon(manager, tmp_path):
    """Serve ``manager`` on a unix socket; yields a connected client."""
    socket_path = str(tmp_path / "repro.sock")
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            serve_async(
                manager,
                socket_path=socket_path,
                ready=lambda addr: ready.set(),
            )
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "daemon never came up"
    client = Client(socket_path, timeout=60)
    try:
        yield client
    finally:
        try:
            client.shutdown()
        except ServiceError:
            pass
        thread.join(5)
        manager.close()


# -- byte-identity across the pool grid ---------------------------------------


class TestPoolGrid:
    @pytest.mark.parametrize("pool", ["thread", "process"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_suites_byte_identical_across_pools(self, pool, workers, tmp_path):
        requests = [
            tiny_request(bound=3),
            tiny_request(bound=2, oracle_spec=OracleSpec(oracle="relational")),
        ]
        local = [
            synthesize(get_model(req.model), req.options) for req in requests
        ]
        manager = JobManager(
            workers=workers, pool=pool, cnf_cache_dir=str(tmp_path / "cnf")
        )
        try:
            jobs = [manager.submit(req)[0] for req in requests]
            for job, expected in zip(jobs, local):
                result = manager.result(job.job_id, timeout=120)
                assert result.state == JobState.DONE.value
                remote = result.result
                assert remote.union.to_json() == expected.union.to_json()
                for axiom, suite in expected.per_axiom.items():
                    assert (
                        remote.per_axiom[axiom].to_json() == suite.to_json()
                    ), axiom
        finally:
            manager.close()


# -- streamed progress events --------------------------------------------------


class TestProgressEvents:
    def test_job_accumulates_events_start_to_finish(self):
        with JobManager(workers=1) as manager:
            job, _ = manager.submit(tiny_request(bound=3))
            manager.result(job.job_id, timeout=60)
            events, terminal = manager.wait_events(job.job_id, 0, timeout=5)
            assert terminal
            assert events[0]["phase"] == "start"
            assert events[0]["model"] == "tso"
            assert events[-1]["phase"] == "finish"
            assert events[-1]["minimal"] >= 1
            assert manager.status(job.job_id).progress_events == len(events)

    def test_progress_envelope_round_trips(self):
        progress = JobProgress(
            job_id="job-0001",
            seq=2,
            event={"phase": "enumerate", "candidates": 2000},
        )
        report = progress.to_report()
        assert report.schema_name == "job-progress"
        assert JobProgress.from_payload(report.payload) == progress

    def test_process_worker_streams_events_over_pipe(self):
        worker = ProcessResidentWorker()
        try:
            events = []
            result, _ = worker.run(
                tiny_request(bound=2), progress=events.append
            )
            assert [e["phase"] for e in events][0] == "start"
            assert events[-1]["phase"] == "finish"
            local = synthesize(
                get_model("tso"), tiny_request(bound=2).options
            )
            assert result.union.to_json() == local.union.to_json()
        finally:
            worker.close()

    def test_wait_events_unknown_id_and_timeout(self):
        stub = BlockingStub()
        manager = JobManager(workers=1, worker_factory=lambda i: stub)
        try:
            assert manager.wait_events("job-9999", 0, timeout=0.1) is None
            job, _ = manager.submit(tiny_request())
            assert stub.started.wait(10)
            # the start of the event stream: the stub emits nothing, so
            # a bounded wait on a running job times out
            with pytest.raises(TimeoutError):
                manager.wait_events(job.job_id, 0, timeout=0.05)
            stub.release.set()
            events, terminal = manager.wait_events(job.job_id, 0, timeout=30)
            assert terminal and events == []
        finally:
            stub.release.set()
            manager.close()

    def test_streamed_synthesize_matches_blocking(self, tmp_path):
        manager = JobManager(workers=1)
        with daemon(manager, tmp_path) as client:
            request = tiny_request(bound=3)
            events = []
            streamed = client.synthesize(
                "tso", request.options, on_progress=events.append
            )
            local = synthesize(get_model("tso"), request.options)
            assert streamed.union.to_json() == local.union.to_json()
            assert events[0]["phase"] == "start"
            assert events[-1]["phase"] == "finish"
            assert manager.jobs()[0].progress_events == len(events)


# -- per-client queue quotas ---------------------------------------------------


class TestClientQuota:
    def test_quota_counts_queued_jobs_per_client(self):
        stub = BlockingStub()
        manager = JobManager(
            workers=1,
            worker_factory=lambda i: stub,
            max_queued_per_client=1,
        )
        try:
            running, _ = manager.submit(tiny_request(bound=2), client="alice")
            assert stub.started.wait(10)  # alice: 1 running, 0 queued
            queued, _ = manager.submit(tiny_request(bound=3), client="alice")
            with pytest.raises(QuotaExceededError) as excinfo:
                manager.submit(tiny_request(bound=4), client="alice")
            assert excinfo.value.code == "quota-exceeded"
            # dedup-coalesced submissions add no queue entry, so they
            # are never rejected
            again, deduped = manager.submit(
                tiny_request(bound=3), client="alice"
            )
            assert deduped and again.job_id == queued.job_id
            # other clients have their own budget
            other, deduped = manager.submit(
                tiny_request(bound=4), client="bob"
            )
            assert not deduped and other.job_id != queued.job_id
            assert manager.metrics()["quota_rejections"] == 1
        finally:
            stub.release.set()
            manager.close()

    def test_quota_rejection_crosses_the_wire_with_code(self, tmp_path):
        stub = BlockingStub()
        manager = JobManager(
            workers=1,
            worker_factory=lambda i: stub,
            max_queued_per_client=1,
        )
        with daemon(manager, tmp_path) as client:
            client.submit(tiny_request(bound=2), client="alice")
            assert stub.started.wait(10)
            client.submit(tiny_request(bound=3), client="alice")
            with pytest.raises(ServiceError) as excinfo:
                client.submit(tiny_request(bound=4), client="alice")
            assert excinfo.value.code == "quota-exceeded"
            # the streamed exchange reports the same typed error
            with pytest.raises(ServiceError) as excinfo:
                list(
                    client.stream(
                        "submit",
                        request=tiny_request(bound=5).to_payload(),
                        stream=True,
                        client="alice",
                    )
                )
            assert excinfo.value.code == "quota-exceeded"
            stub.release.set()


# -- recycling and child death -------------------------------------------------


def _crash_setup(payload):
    return payload


def _crash_work(state, job, emit):
    if job.get("event"):
        emit({"phase": "echo", "n": job["n"]})
    if job.get("die"):
        os._exit(1)  # simulate a mid-job crash
    if job.get("raise"):
        raise ValueError("boom")
    return {"n": job["n"], "state": state}


def _block_setup(payload):
    return None


def _block_work(state, job, emit):
    emit({"phase": "start", "model": job["request"]["model"]})
    if job["block"]:
        time.sleep(60)  # park until the parent kills this child
    from repro.service.pool import ResidentWorker

    request = SynthesisRequest.from_payload(job["request"])
    result, metrics = ResidentWorker().run(request)
    return result_to_payload(result), metrics


class KillableProcessWorker:
    """Process-backed pool worker whose child parks on ``bound == 2``
    jobs — the deterministic stand-in for 'killed mid-synthesis'."""

    def __init__(self, index: int = 0):
        self.index = index
        self._proc = ResidentProcess(
            ResidentTask(setup=_block_setup, work=_block_work, payload=None)
        )

    @property
    def pid(self):
        return self._proc.pid

    def run(self, request, progress=None):
        payload, metrics = self._proc.run(
            {
                "request": request.to_payload(),
                "block": request.options.bound == 2,
            },
            on_event=progress,
        )
        return result_from_payload(payload), dict(metrics)

    def as_metrics(self):
        return {"worker_jobs": 0}

    def close(self):
        self._proc.close()


class TestResidentProcess:
    def test_events_and_results_cross_the_pipe(self):
        proc = ResidentProcess(
            ResidentTask(setup=_crash_setup, work=_crash_work, payload="s")
        )
        try:
            events = []
            out = proc.run({"n": 7, "event": True}, on_event=events.append)
            assert out == {"n": 7, "state": "s"}
            assert events == [{"phase": "echo", "n": 7}]
        finally:
            proc.close()

    def test_remote_exception_reports_and_child_survives(self):
        proc = ResidentProcess(
            ResidentTask(setup=_crash_setup, work=_crash_work, payload="s")
        )
        try:
            proc.run({"n": 1})
            pid = proc.pid
            with pytest.raises(RemoteJobError) as excinfo:
                proc.run({"n": 2, "raise": True})
            assert excinfo.value.exc_type == "ValueError"
            assert "boom" in str(excinfo.value)
            # the child kept its state and its pid — only the job failed
            assert proc.run({"n": 3}) == {"n": 3, "state": "s"}
            assert proc.pid == pid
        finally:
            proc.close()

    def test_mid_job_death_raises_and_next_job_respawns(self):
        proc = ResidentProcess(
            ResidentTask(setup=_crash_setup, work=_crash_work, payload="s")
        )
        try:
            proc.run({"n": 1})
            pid = proc.pid
            with pytest.raises(WorkerDied):
                proc.run({"n": 2, "die": True})
            assert proc.run({"n": 3}) == {"n": 3, "state": "s"}
            assert proc.pid != pid
        finally:
            proc.close()


class TestProcessRecycling:
    def test_pool_recycles_by_restarting_children(self, tmp_path):
        request = tiny_request(oracle_spec=OracleSpec(oracle="relational"))
        manager = JobManager(
            workers=1,
            recycle_after=1,
            cnf_cache_dir=str(tmp_path / "cnf"),
            pool="process",
        )
        try:
            for _ in range(2):
                job, _ = manager.submit(request)
                result = manager.result(job.job_id, timeout=120)
                assert result.state == JobState.DONE.value
            metrics = manager.metrics()
            assert metrics["worker_recycles"] == 2
            # each child started cold — and the parent-side counters
            # survived both restarts
            assert metrics["worker_warm_hits"] == 0
            assert metrics["worker_warm_misses"] == 2
        finally:
            manager.close()

    def test_warm_counters_accumulate_without_recycling(self, tmp_path):
        request = tiny_request(oracle_spec=OracleSpec(oracle="relational"))
        manager = JobManager(
            workers=1, cnf_cache_dir=str(tmp_path / "cnf"), pool="process"
        )
        try:
            for _ in range(2):
                job, _ = manager.submit(request)
                manager.result(job.job_id, timeout=120)
            metrics = manager.metrics()
            assert metrics["worker_warm_hits"] == 1
            assert metrics["worker_warm_misses"] == 1
        finally:
            manager.close()

    def test_killed_child_fails_job_and_pool_recovers(self):
        worker = KillableProcessWorker()
        manager = JobManager(workers=1, worker_factory=lambda i: worker)
        try:
            doomed, _ = manager.submit(tiny_request(bound=2))
            # synchronize on the start event: the child is now parked
            events, terminal = manager.wait_events(
                doomed.job_id, 0, timeout=30
            )
            assert events[0]["phase"] == "start" and not terminal
            os.kill(worker.pid, signal.SIGKILL)
            result = manager.result(doomed.job_id, timeout=30)
            assert result.state == JobState.FAILED.value
            assert "WorkerDied" in result.error
            # the pool survives: the next job spawns a fresh child
            follow_up, _ = manager.submit(tiny_request(bound=3))
            result = manager.result(follow_up.job_id, timeout=60)
            assert result.state == JobState.DONE.value
            assert len(result.result.union) > 0
        finally:
            manager.close()
