"""Job queue lifecycle: submit → status → result, dedup, cancel, recycle."""

import threading
import time

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import OracleSpec, SynthesisOptions, synthesize
from repro.models.registry import get_model
from repro.service.jobs import JobManager
from repro.service.pool import ResidentWorker
from repro.service.protocol import JobState, SynthesisRequest


def tiny_request(bound: int = 2, **knobs) -> SynthesisRequest:
    knobs.setdefault("config", EnumerationConfig(max_events=bound))
    spec_knobs = {
        key: knobs.pop(key)
        for key in ("oracle", "incremental", "cnf_cache_dir", "prefilter")
        if key in knobs
    }
    if spec_knobs:
        knobs["oracle_spec"] = OracleSpec(**spec_knobs)
    return SynthesisRequest.build("tso", bound=bound, **knobs)


class BlockingWorker:
    """Stub worker that parks on an event so jobs stay RUNNING/QUEUED
    deterministically — the dedup and cancel tests need a wedged queue."""

    def __init__(self, index: int = 0):
        self.index = index
        self.release = threading.Event()
        self.started = threading.Event()

    def run(self, request, progress=None):
        self.started.set()
        assert self.release.wait(30), "test never released the worker"
        result = synthesize(get_model(request.model), request.options)
        return result, {"stub": 1}

    def as_metrics(self):
        return {"worker_jobs": 0}


class TestLifecycle:
    def test_submit_status_result_round_trip(self):
        with JobManager(workers=1) as manager:
            job, deduped = manager.submit(tiny_request())
            assert not deduped
            result = manager.result(job.job_id, timeout=60)
            assert result.state == JobState.DONE.value
            assert result.result is not None
            assert len(result.result.union) > 0
            status = manager.status(job.job_id)
            assert status.state == JobState.DONE.value
            assert status.queue_seconds is not None
            assert status.run_seconds is not None
            assert status.worker == 0

    def test_result_matches_local_run_byte_identically(self):
        request = tiny_request(bound=3)
        with JobManager(workers=1) as manager:
            job, _ = manager.submit(request)
            remote = manager.result(job.job_id, timeout=60).result
        local = synthesize(get_model("tso"), request.options)
        assert remote.union.to_json() == local.union.to_json()

    def test_unknown_job_ids(self):
        with JobManager(workers=1) as manager:
            assert manager.status("job-9999") is None
            assert manager.result("job-9999") is None
            assert manager.cancel("job-9999") is None

    def test_failed_job_reports_error(self):
        from repro.core.minimality import CriterionMode

        # the Fig. 19 workaround criterion is explicit-oracle-only, so
        # build_checker raises and the job lands FAILED with the message
        request = SynthesisRequest(
            "tso",
            SynthesisOptions(
                bound=2,
                oracle_spec=OracleSpec(oracle="relational"),
                mode=CriterionMode.EXECUTION_WA,
            ),
        )
        with JobManager(workers=1) as manager:
            job, _ = manager.submit(request)
            result = manager.result(job.job_id, timeout=60)
        assert result.state == JobState.FAILED.value
        assert result.result is None
        assert "explicit" in result.error

    def test_result_timeout_raises(self):
        worker = BlockingWorker()
        manager = JobManager(workers=1, worker_factory=lambda i: worker)
        try:
            job, _ = manager.submit(tiny_request())
            with pytest.raises(TimeoutError):
                manager.result(job.job_id, timeout=0.05)
        finally:
            worker.release.set()
            manager.close()


class TestDedup:
    def test_identical_active_submissions_coalesce(self):
        worker = BlockingWorker()
        manager = JobManager(workers=1, worker_factory=lambda i: worker)
        try:
            first, deduped_first = manager.submit(tiny_request())
            assert worker.started.wait(10)  # job is now RUNNING
            second, deduped_second = manager.submit(tiny_request())
            third, deduped_third = manager.submit(tiny_request())
            assert not deduped_first
            assert deduped_second and deduped_third
            assert second.job_id == first.job_id == third.job_id
            assert manager.status(first.job_id).clients == 3
            assert manager.metrics()["dedup_hits"] == 2
            assert manager.metrics()["jobs_submitted"] == 1
            worker.release.set()
            result = manager.result(first.job_id, timeout=30)
            assert result.state == JobState.DONE.value
        finally:
            worker.release.set()
            manager.close()

    def test_different_requests_do_not_coalesce(self):
        worker = BlockingWorker()
        manager = JobManager(workers=1, worker_factory=lambda i: worker)
        try:
            first, _ = manager.submit(tiny_request(bound=2))
            second, deduped = manager.submit(tiny_request(bound=3))
            assert not deduped
            assert second.job_id != first.job_id
        finally:
            worker.release.set()
            manager.close()

    def test_finished_job_is_rerun_not_replayed(self):
        """A repeat of a *completed* request runs again (that re-run is
        how warm-cache hit rates are measured) instead of serving the
        memoized result."""
        with JobManager(workers=1) as manager:
            first, _ = manager.submit(tiny_request())
            manager.result(first.job_id, timeout=60)
            second, deduped = manager.submit(tiny_request())
            assert not deduped
            assert second.job_id != first.job_id
            manager.result(second.job_id, timeout=60)
            assert manager.metrics()["dedup_hits"] == 0


class TestCancel:
    def test_cancel_queued_job(self):
        worker = BlockingWorker()
        manager = JobManager(workers=1, worker_factory=lambda i: worker)
        try:
            running, _ = manager.submit(tiny_request(bound=2))
            assert worker.started.wait(10)
            queued, _ = manager.submit(tiny_request(bound=3))
            status = manager.cancel(queued.job_id)
            assert status.state == JobState.CANCELLED.value
            result = manager.result(queued.job_id, timeout=5)
            assert result.state == JobState.CANCELLED.value
            assert result.result is None
            # a fresh identical submission does not coalesce onto the
            # cancelled job
            again, deduped = manager.submit(tiny_request(bound=3))
            assert not deduped and again.job_id != queued.job_id
            worker.release.set()
        finally:
            worker.release.set()
            manager.close()

    def test_cancel_running_job_is_refused(self):
        worker = BlockingWorker()
        manager = JobManager(workers=1, worker_factory=lambda i: worker)
        try:
            job, _ = manager.submit(tiny_request())
            assert worker.started.wait(10)
            status = manager.cancel(job.job_id)
            assert status.state == JobState.RUNNING.value
            worker.release.set()
            assert (
                manager.result(job.job_id, timeout=30).state
                == JobState.DONE.value
            )
        finally:
            worker.release.set()
            manager.close()

    def test_queue_position_reported(self):
        worker = BlockingWorker()
        manager = JobManager(workers=1, worker_factory=lambda i: worker)
        try:
            manager.submit(tiny_request(bound=2))
            assert worker.started.wait(10)
            second, _ = manager.submit(tiny_request(bound=3))
            third, _ = manager.submit(tiny_request(bound=4))
            assert manager.status(second.job_id).position == 0
            assert manager.status(third.job_id).position == 1
            worker.release.set()
        finally:
            worker.release.set()
            manager.close()


class TestRecycling:
    def test_worker_recycles_mid_queue(self, tmp_path):
        request = tiny_request(oracle="relational")
        manager = JobManager(
            workers=1,
            recycle_after=1,
            cnf_cache_dir=str(tmp_path / "cnf"),
        )
        try:
            for _ in range(3):
                job, _ = manager.submit(request)
                assert (
                    manager.result(job.job_id, timeout=60).state
                    == JobState.DONE.value
                )
            metrics = manager.metrics()
            assert metrics["worker_recycles"] == 3
            # every job rebuilt its checker (recycled before reuse)
            assert metrics["worker_warm_hits"] == 0
            assert metrics["worker_warm_misses"] == 3
        finally:
            manager.close()

    def test_warm_checker_reused_without_recycling(self):
        request = tiny_request(oracle="relational")
        with JobManager(workers=1) as manager:
            for _ in range(3):
                job, _ = manager.submit(request)
                manager.result(job.job_id, timeout=60)
            metrics = manager.metrics()
            assert metrics["worker_warm_hits"] == 2
            assert metrics["worker_warm_misses"] == 1

    def test_recycled_worker_hits_disk_cnf_cache(self, tmp_path):
        """The restart-survival story: recycling drops the in-memory
        caches, so the next job re-reads compiled CNF from disk and
        reports a nonzero compile hit rate over warm entries."""
        request = tiny_request(oracle="relational")
        manager = JobManager(
            workers=1,
            recycle_after=1,
            cnf_cache_dir=str(tmp_path / "cnf"),
        )
        try:
            first, _ = manager.submit(request)
            cold = manager.result(first.job_id, timeout=60).result
            assert cold.oracle_stats["compile_misses"] > 0
            assert cold.oracle_stats["compile_hits"] == 0

            second, _ = manager.submit(request)
            warm = manager.result(second.job_id, timeout=60).result
            assert warm.oracle_stats["compile_hit_rate"] > 0
            assert warm.oracle_stats["compile_warm_entries"] > 0
            assert warm.oracle_stats["compile_misses"] == 0
            # identical answers either way
            assert warm.union.to_json() == cold.union.to_json()
        finally:
            manager.close()


class TestResidentWorker:
    def test_per_model_cache_dir_injected(self, tmp_path):
        worker = ResidentWorker(cnf_cache_base=str(tmp_path))
        effective = worker.effective_request(tiny_request(oracle="relational"))
        assert effective.options.oracle_spec.cnf_cache_dir == str(
            tmp_path / "tso"
        )

    def test_explicit_oracle_gets_no_cache_dir(self, tmp_path):
        worker = ResidentWorker(cnf_cache_base=str(tmp_path))
        effective = worker.effective_request(tiny_request(oracle="explicit"))
        assert effective.options.oracle_spec.cnf_cache_dir is None

    def test_caller_supplied_cache_dir_wins(self, tmp_path):
        worker = ResidentWorker(cnf_cache_base=str(tmp_path))
        request = tiny_request(
            oracle="relational", cnf_cache_dir=str(tmp_path / "mine")
        )
        effective = worker.effective_request(request)
        assert effective.options.oracle_spec.cnf_cache_dir == str(
            tmp_path / "mine"
        )


class TestTrace:
    def test_trace_dir_is_lintable_and_renders(self, tmp_path):
        from repro.analysis import lint_trace_dir
        from repro.obs import summarize_trace_dir

        trace_dir = tmp_path / "trace"
        manager = JobManager(workers=1, trace_dir=str(trace_dir))
        try:
            request = tiny_request(oracle="relational")
            for _ in range(2):
                job, _ = manager.submit(request)
                manager.result(job.job_id, timeout=60)
        finally:
            manager.close()
        assert lint_trace_dir(str(trace_dir)) == []
        payload = summarize_trace_dir(str(trace_dir))
        assert payload["spans"]["job"]["count"] == 2
        assert payload["counters"].get("sat_queries", 0) >= 0
        assert payload["meta"]["command"] == "serve"


class TestMetricsShape:
    def test_queue_wait_measured(self):
        worker = BlockingWorker()
        manager = JobManager(workers=1, worker_factory=lambda i: worker)
        try:
            first, _ = manager.submit(tiny_request(bound=2))
            assert worker.started.wait(10)
            time.sleep(0.05)
            second, _ = manager.submit(tiny_request(bound=3))
            time.sleep(0.05)
            worker.release.set()
            manager.result(second.job_id, timeout=30)
            status = manager.status(second.job_id)
            assert status.queue_seconds is not None
            assert status.queue_seconds >= 0.04
        finally:
            worker.release.set()
            manager.close()
