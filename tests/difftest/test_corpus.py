"""JSONL reproducer corpus: round-trips, dedup, torn-line tolerance."""

import json

from repro.difftest.corpus import CORPUS_SCHEMA, Corpus
from repro.difftest.discrepancy import Discrepancy, discrepancy_fingerprint
from repro.litmus.catalog import CATALOG


def _disc(name="CoRW", kind="mutant", mutant="drop:sc_per_loc"):
    return Discrepancy(
        kind, "tso", CATALOG[name].test, "detail", mutant=mutant
    )


class TestCorpus:
    def test_roundtrip(self, tmp_path):
        corpus = Corpus(str(tmp_path / "c"))
        disc = _disc()
        assert corpus.append("tso", [disc]) == 1
        assert corpus.load("tso") == [disc]
        assert corpus.models() == ["tso"]

    def test_append_dedups_against_disk(self, tmp_path):
        corpus = Corpus(str(tmp_path / "c"))
        disc = _disc()
        assert corpus.append("tso", [disc]) == 1
        assert corpus.append("tso", [disc]) == 0
        # same content, different provenance: still a duplicate
        relabelled = Discrepancy(
            disc.kind, disc.model, disc.test, "other words",
            mutant=disc.mutant, seed=9, index=4,
        )
        assert corpus.append("tso", [relabelled]) == 0
        assert len(corpus.load("tso")) == 1

    def test_distinct_entries_accumulate(self, tmp_path):
        corpus = Corpus(str(tmp_path / "c"))
        a = _disc("CoRW")
        b = _disc("MP")
        c = _disc("CoRW", kind="outcome-set", mutant=None)
        assert corpus.append("tso", [a, b, c]) == 3
        assert corpus.fingerprints("tso") == {
            discrepancy_fingerprint(d) for d in (a, b, c)
        }

    def test_reader_tolerates_garbage(self, tmp_path):
        corpus = Corpus(str(tmp_path / "c"))
        corpus.append("tso", [_disc()])
        path = corpus.path_for("tso")
        with open(path, "a") as fh:
            fh.write("{torn li")  # no trailing newline: a killed append
        with open(path) as fh:
            good_line = fh.readline()
        with open(path, "a") as fh:
            fh.write("\n\n")
            fh.write(json.dumps({"schema": 999, "kind": "mutant"}) + "\n")
            fh.write(json.dumps({"schema": CORPUS_SCHEMA, "x": 1}) + "\n")
            fh.write(good_line)  # duplicate of the valid entry
        assert len(corpus.load("tso")) == 2
        assert len(corpus.fingerprints("tso")) == 1

    def test_missing_directory_and_model(self, tmp_path):
        corpus = Corpus(str(tmp_path / "never_created"))
        assert corpus.models() == []
        assert corpus.load("tso") == []
        assert corpus.fingerprints("tso") == set()
        assert corpus.append("tso", []) == 0
