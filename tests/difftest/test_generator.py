"""Seeded random litmus test generation: determinism and validity."""

import pytest

from repro.difftest.generator import GeneratorConfig, TestGenerator
from repro.difftest.rng import derive_seed, stream
from repro.litmus.test import LitmusTest
from repro.models.registry import available_models, get_model


class TestRngStreams:
    def test_derive_seed_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)
        assert derive_seed(7, 3) != derive_seed(7, 4)
        assert derive_seed(7, 3) != derive_seed(3, 7)

    def test_stream_independent_of_draw_order(self):
        a = stream(1, 2).random()
        # drawing from an unrelated stream first must not perturb (1, 2)
        stream(9, 9).random()
        assert stream(1, 2).random() == a


class TestGeneratorDeterminism:
    def test_same_seed_same_test(self):
        gen = TestGenerator(get_model("tso").vocabulary, GeneratorConfig())
        a = gen.generate(stream(42, 0))
        b = gen.generate(stream(42, 0))
        assert a == b

    def test_fresh_generator_same_test(self):
        vocab = get_model("tso").vocabulary
        config = GeneratorConfig()
        a = TestGenerator(vocab, config).generate(stream(42, 5))
        b = TestGenerator(vocab, config).generate(stream(42, 5))
        assert a == b

    def test_seeds_vary_the_output(self):
        gen = TestGenerator(get_model("tso").vocabulary, GeneratorConfig())
        tests = {gen.generate(stream(0, i)) for i in range(30)}
        assert len(tests) > 5


class TestGeneratorValidity:
    @pytest.mark.parametrize("model_name", available_models())
    def test_generated_tests_are_well_formed(self, model_name):
        """LitmusTest.__post_init__ enforces the structural invariants
        (rmw adjacency, dependency direction, ...), so surviving
        construction plus the size bounds is the whole contract."""
        vocab = get_model(model_name).vocabulary
        config = GeneratorConfig(max_events=4)
        gen = TestGenerator(vocab, config)
        for i in range(40):
            test = gen.generate(stream(13, i))
            assert isinstance(test, LitmusTest)
            assert config.min_events <= test.num_events <= config.max_events
            assert len(test.threads) <= config.max_threads
            assert len(test.addresses) <= config.max_addresses
            if vocab.has_scopes:
                assert test.scopes is not None
            else:
                assert test.scopes is None

    def test_addresses_communicate(self):
        """Every address is touched by >= 2 events including a write —
        single-accessor addresses cannot produce interesting outcomes."""
        gen = TestGenerator(get_model("sc").vocabulary, GeneratorConfig())
        for i in range(40):
            test = gen.generate(stream(99, i))
            for addr in test.addresses:
                accesses = test.accesses_to(addr)
                assert len(accesses) >= 2, (test, addr)
                assert test.writes_to(addr), (test, addr)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(max_events=0)
        with pytest.raises(ValueError):
            GeneratorConfig(min_events=3, max_events=2)
        with pytest.raises(ValueError):
            GeneratorConfig(max_threads=0)
