"""Model mutation: tagged known-buggy variants of the stock models."""

import pytest

from repro.core.oracle import ExplicitOracle
from repro.difftest.mutate import (
    MutantModel,
    model_fingerprint,
    mutant_tags,
    resolve_mutant,
)
from repro.litmus.catalog import CATALOG
from repro.models.registry import available_models, get_model


class TestRegistry:
    def test_tags_cover_every_axiom(self):
        model = get_model("tso")
        tags = mutant_tags(model)
        for axiom in model.axiom_names():
            assert f"drop:{axiom}" in tags
        assert "empty:fr" in tags

    def test_tags_sorted_and_stable(self):
        model = get_model("sc")
        assert mutant_tags(model) == mutant_tags(model)
        drops = [t for t in mutant_tags(model) if t.startswith("drop:")]
        assert drops == sorted(drops)

    def test_resolve_unknown_tag(self):
        model = get_model("tso")
        with pytest.raises(KeyError):
            resolve_mutant(model, "drop:no_such_axiom")
        with pytest.raises(KeyError):
            resolve_mutant(model, "bogus:fr")

    @pytest.mark.parametrize("model_name", available_models())
    def test_every_tag_resolves(self, model_name):
        model = get_model(model_name)
        for tag in mutant_tags(model):
            mutant = resolve_mutant(model, tag)
            assert isinstance(mutant, MutantModel)
            assert mutant.tag == tag
            assert mutant.vocabulary == model.vocabulary


class TestSemantics:
    def test_drop_axiom_removes_it(self):
        model = get_model("tso")
        mutant = resolve_mutant(model, "drop:sc_per_loc")
        assert "sc_per_loc" not in mutant.axiom_names()
        assert set(mutant.axiom_names()) == (
            set(model.axiom_names()) - {"sc_per_loc"}
        )

    def test_dropped_axiom_weakens_the_model(self):
        """CoRW is forbidden by TSO's sc_per_loc alone, so the drop
        mutant must admit strictly more outcomes on it."""
        test = CATALOG["CoRW"].test
        stock = ExplicitOracle(get_model("tso")).analyze(test)
        mutated = ExplicitOracle(
            resolve_mutant(get_model("tso"), "drop:sc_per_loc")
        ).analyze(test)
        assert stock.model_valid < mutated.model_valid
        assert stock.all_outcomes == mutated.all_outcomes

    def test_empty_fr_weakens_the_model(self):
        """With fr emptied, reading stale values stops being ordered
        against later writes — CoRR-style forbidden outcomes appear."""
        test = CATALOG["CoRR"].test
        stock = ExplicitOracle(get_model("sc")).analyze(test)
        mutated = ExplicitOracle(
            resolve_mutant(get_model("sc"), "empty:fr")
        ).analyze(test)
        assert stock.model_valid < mutated.model_valid


class TestFingerprints:
    @pytest.mark.parametrize("model_name", available_models())
    def test_mutants_distinguishable_from_stock(self, model_name):
        model = get_model(model_name)
        stock = model_fingerprint(model)
        for tag in mutant_tags(model):
            mutant = resolve_mutant(model, tag)
            assert model_fingerprint(mutant, tag) != stock
            # the default tag argument picks the mutant's own tag up
            assert model_fingerprint(mutant) == model_fingerprint(mutant, tag)

    def test_fingerprint_stable(self):
        model = get_model("tso")
        assert model_fingerprint(model) == model_fingerprint(
            get_model("tso")
        )
