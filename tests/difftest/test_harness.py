"""DiffHarness: the four differential checks."""

import pytest

from repro.difftest.discrepancy import Discrepancy
from repro.difftest.generator import GeneratorConfig, TestGenerator
from repro.difftest.harness import DiffHarness
from repro.difftest.rng import stream
from repro.litmus.catalog import CATALOG
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def tso_harness():
    return DiffHarness("tso", mutants=("drop:sc_per_loc",))


class TestStockAgreement:
    @pytest.mark.parametrize("name", ["MP", "SB", "LB", "CoRW", "CoWR"])
    def test_catalog_tests_clean(self, tso_harness, name):
        """The two oracles and the criterion agree on the catalog; only
        the (desired) mutant kill may fire."""
        found = tso_harness.check(CATALOG[name].test)
        assert all(d.kind == "mutant" for d in found), found

    def test_random_tests_clean(self, tso_harness):
        gen = TestGenerator(
            tso_harness.model.vocabulary, GeneratorConfig()
        )
        for i in range(25):
            test = gen.generate(stream(4, i))
            stock = [
                d for d in tso_harness.check(test) if d.kind != "mutant"
            ]
            assert not stock, (test, stock)

    def test_power_runs_without_relational_oracle(self):
        """Power has no Alloy encoding: the harness degrades to the
        invariant + mutant checks instead of raising."""
        harness = DiffHarness("power", mutants=("empty:fr",))
        assert harness.relational is None
        found = harness.check(CATALOG["MP+syncs"].test)
        assert all(d.kind == "mutant" for d in found)


class TestMutantKills:
    def test_corw_kills_the_sc_per_loc_drop(self, tso_harness):
        found = tso_harness.check(CATALOG["CoRW"].test, seed=9, index=3)
        kills = [d for d in found if d.kind == "mutant"]
        assert len(kills) == 1
        kill = kills[0]
        assert kill.mutant == "drop:sc_per_loc"
        assert kill.seed == 9 and kill.index == 3
        assert "stock=" in kill.detail and "mutant=" in kill.detail

    def test_reproduces_roundtrip(self, tso_harness):
        kill = tso_harness.check(CATALOG["CoRW"].test)[0]
        assert tso_harness.reproduces(kill)
        # an unrelated test does not exhibit the same kill
        assert not tso_harness.reproduces(kill, CATALOG["MP"].test)

    def test_findings_like_lazily_builds_mutant_oracles(self):
        harness = DiffHarness("tso")  # no mutants configured
        donor = DiffHarness("tso", mutants=("drop:sc_per_loc",))
        kill = donor.check(CATALOG["CoRW"].test)[0]
        assert harness.reproduces(kill)

    def test_findings_like_unknown_mutant_raises(self, tso_harness):
        ghost = Discrepancy(
            "mutant",
            "tso",
            CATALOG["CoRW"].test,
            "stale",
            mutant="drop:gone_axiom",
        )
        with pytest.raises(KeyError):
            tso_harness.findings_like(ghost)


class TestDeterminism:
    def test_detail_strings_stable(self, tso_harness):
        a = tso_harness.check(CATALOG["CoRW"].test)
        b = DiffHarness("tso", mutants=("drop:sc_per_loc",)).check(
            CATALOG["CoRW"].test
        )
        assert [d.detail for d in a] == [d.detail for d in b]
