"""Campaign driver: determinism, mutant kills, corpus replay."""

import json

import pytest

from repro.difftest.campaign import CampaignOptions, run_campaign
from repro.difftest.corpus import Corpus
from repro.difftest.discrepancy import Discrepancy
from repro.litmus.catalog import CATALOG


def _options(**overrides) -> CampaignOptions:
    base = dict(
        model="sc",
        seed=17,
        budget=40,
        mutants=("drop:sequential_consistency",),
    )
    base.update(overrides)
    return CampaignOptions(**base)


@pytest.fixture(scope="module")
def sc_report():
    return run_campaign(_options())


class TestFixedSeedCampaign:
    def test_stock_model_is_clean(self, sc_report):
        assert sc_report.stock == []
        assert sc_report.unshrunk == 0
        assert sc_report.tests_run == 40

    def test_mutant_killed_with_shrunken_reproducer(self, sc_report):
        assert sc_report.surviving == ()
        disc, original = sc_report.kills["drop:sequential_consistency"]
        assert disc.kind == "mutant"
        assert disc.test.num_events <= original
        assert sc_report.clean

    def test_report_json_schema(self, sc_report):
        envelope = json.loads(sc_report.to_json())
        assert envelope["schema"] == {"name": "difftest-campaign", "version": 2}
        assert envelope["tool"] == "litmus-synth"
        assert envelope["command"] == "difftest"
        doc = envelope["payload"]
        assert doc["model"] == "sc"
        assert doc["clean"] is True
        assert doc["surviving_mutants"] == []
        kill = doc["mutant_kills"]["drop:sequential_consistency"]
        assert kill["events"] <= kill["original_events"]
        # nothing wall-clock or worker-count derived in the report
        assert "jobs" not in doc and "wall_seconds" not in doc

    def test_summary_mentions_the_kill(self, sc_report):
        text = sc_report.summary()
        assert "KILLED" in text and "drop:sequential_consistency" in text
        assert text.endswith("verdict: CLEAN")


class TestDeterminism:
    def test_jobs_do_not_change_the_report(self, sc_report):
        parallel = run_campaign(_options(jobs=2))
        assert parallel.to_json() == sc_report.to_json()

    def test_shard_count_does_not_change_the_report(self, sc_report):
        pinned = run_campaign(_options(shards=3))
        assert pinned.to_json() == sc_report.to_json()

    def test_seed_changes_the_tests(self, sc_report):
        other = run_campaign(_options(seed=18))
        assert other.to_json() != sc_report.to_json()


class TestCorpusReplay:
    def test_kills_persist_and_replay_confirms(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        first = run_campaign(_options(corpus_dir=corpus_dir))
        assert first.corpus_added >= 1
        again = run_campaign(_options(corpus_dir=corpus_dir))
        assert again.replay_confirmed == first.corpus_added
        assert again.replay_stale == []
        assert again.corpus_added == 0  # dedup: nothing new to write

    def test_stale_entry_fails_the_campaign(self, tmp_path):
        """An entry that records a disagreement the oracles no longer
        have (here: a fabricated outcome-set discrepancy on a test the
        oracles agree on) must surface as stale and flip the verdict."""
        corpus_dir = str(tmp_path / "corpus")
        ghost = Discrepancy(
            "outcome-set", "sc", CATALOG["MP"].test, "fabricated"
        )
        Corpus(corpus_dir).append("sc", [ghost])
        report = run_campaign(_options(corpus_dir=corpus_dir, budget=0))
        assert report.replay_stale == [ghost]
        assert not report.clean
        assert "STALE" in report.summary()

    def test_unknown_mutant_entry_is_stale_not_fatal(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        ghost = Discrepancy(
            "mutant", "sc", CATALOG["MP"].test, "gone",
            mutant="drop:removed_axiom",
        )
        Corpus(corpus_dir).append("sc", [ghost])
        report = run_campaign(_options(corpus_dir=corpus_dir, budget=0))
        assert report.replay_stale == [ghost]


class TestOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignOptions(model="sc", budget=-1)
        with pytest.raises(ValueError):
            CampaignOptions(model="sc", jobs=0)

    def test_zero_budget_runs_nothing(self):
        report = run_campaign(_options(budget=0, mutants=()))
        assert report.tests_run == 0
        assert report.clean
