"""Greedy reproducer minimization."""

import pytest

from repro.difftest.harness import DiffHarness
from repro.difftest.shrink import shrink
from repro.litmus.catalog import CATALOG
from repro.litmus.events import read, write
from repro.litmus.test import LitmusTest


@pytest.fixture(scope="module")
def harness():
    return DiffHarness("tso", mutants=("drop:sc_per_loc",))


def _kill(harness, test):
    kills = [d for d in harness.check(test) if d.kind == "mutant"]
    assert kills, "test must kill the mutant"
    return kills[0]


class TestShrink:
    def test_never_grows(self, harness):
        disc = _kill(harness, CATALOG["CoRW"].test)
        shrunk = shrink(harness, disc)
        assert shrunk.test.num_events <= disc.test.num_events
        assert harness.reproduces(shrunk, shrunk.test)

    def test_strips_irrelevant_structure(self, harness):
        """A CoRW core padded with an unrelated thread shrinks back down
        to (at most) the core's size."""
        core = CATALOG["CoRW"].test
        padded = LitmusTest(
            core.threads + ((write(1, 7), read(1)),),
            rmw=core.rmw,
            deps=core.deps,
        )
        disc = _kill(harness, padded)
        shrunk = shrink(harness, disc)
        assert shrunk.test.num_events <= core.num_events
        assert harness.reproduces(shrunk, shrunk.test)

    def test_preserves_provenance(self, harness):
        disc = _kill(harness, CATALOG["CoRW"].test)
        disc = disc.__class__(**{**disc.__dict__, "seed": 5, "index": 11})
        shrunk = shrink(harness, disc)
        assert shrunk.kind == "mutant"
        assert shrunk.mutant == "drop:sc_per_loc"
        assert shrunk.seed == 5 and shrunk.index == 11

    def test_deterministic(self, harness):
        core = CATALOG["CoRW"].test
        padded = LitmusTest(
            core.threads + ((write(1, 7), read(1)),),
            rmw=core.rmw,
            deps=core.deps,
        )
        disc = _kill(harness, padded)
        a = shrink(harness, disc)
        b = shrink(harness, disc)
        assert a == b

    def test_shrinking_reaches_a_fixpoint(self, harness):
        """Re-shrinking an already-shrunk reproducer changes nothing."""
        shrunk = shrink(harness, _kill(harness, CATALOG["CoRW"].test))
        again = shrink(harness, shrunk)
        assert again.test == shrunk.test
