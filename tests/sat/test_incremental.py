"""Incremental solving: removable clauses, telemetry, clean enumeration."""

import random

import pytest

from repro.sat.solver import SAT, UNSAT, Solver, SolverStats


def make(clauses):
    s = Solver()
    for c in clauses:
        s.add_clause(c)
    return s


class TestRemovableClauses:
    def test_selector_activates_and_deactivates(self):
        s = make([[1, 2]])
        sel = s.new_selector()
        assert s.add_removable_clause(sel, [-1])
        assert s.add_removable_clause(sel, [-2])
        assert s.solve() is SAT            # guard inert without assumption
        assert s.solve([sel]) is UNSAT     # active: forces 1=2=False vs [1,2]
        assert s.solve() is SAT            # and inert again afterwards

    def test_release_selector_purges(self):
        s = make([[1, 2]])
        sel = s.new_selector()
        s.add_removable_clause(sel, [-1])
        s.add_removable_clause(sel, [-2])
        n_before = len(s.clauses)
        assert s.solve([sel]) is UNSAT
        s.release_selector(sel)
        # guarded clauses are physically gone; only the retire unit stays
        assert len(s.clauses) <= n_before - 2 + 1
        for clause in s.clauses + s.learnts:
            assert all(idx >> 1 != sel for idx in clause.lits)
        assert s.solve() is SAT

    def test_released_selector_rejected(self):
        s = Solver()
        sel = s.new_selector()
        s.release_selector(sel)
        with pytest.raises(ValueError):
            s.add_removable_clause(sel, [1])

    def test_empty_body_retires_selector(self):
        s = make([[1]])
        sel = s.new_selector()
        # body [-1] with 1 fixed true at level 0 simplifies to empty
        s.add_removable_clause(sel, [-1])
        assert s.solve([sel]) is UNSAT
        assert s.solve() is SAT

    def test_interleaved_groups(self):
        s = make([[1, 2, 3]])
        a, b = s.new_selector(), s.new_selector()
        s.add_removable_clause(a, [-1])
        s.add_removable_clause(b, [-2])
        assert s.solve([a, b]) is SAT
        model = s.model()
        assert model[3] or (not model[1] and not model[2])
        s.release_selector(a)
        assert s.solve([b]) is SAT
        assert not s.model()[2]

    def test_incremental_matches_fresh(self):
        """Property: any assumption query on a long-lived solver equals
        the verdict of a fresh solver with the activated clauses baked
        in."""
        rng = random.Random(7)
        n_vars = 8
        base = [
            [rng.choice([-1, 1]) * rng.randint(1, n_vars) for _ in range(3)]
            for _ in range(12)
        ]
        s = make(base)
        groups = []
        for _ in range(4):
            sel = s.new_selector()
            lits = [
                [rng.choice([-1, 1]) * rng.randint(1, n_vars) for _ in range(2)]
                for _ in range(3)
            ]
            for c in lits:
                s.add_removable_clause(sel, c)
            groups.append((sel, lits))
        for trial in range(20):
            chosen = [g for g in groups if rng.random() < 0.5]
            verdict = s.solve([sel for sel, _ in chosen])
            fresh = make(base + [c for _, lits in chosen for c in lits])
            assert verdict is fresh.solve(), f"trial {trial} diverged"


class TestSolverStats:
    def test_counters_accumulate(self):
        s = make([[1, 2], [-1, 2], [1, -2], [-1, -2, 3]])
        assert s.stats.queries == 0
        s.solve()
        s.solve([3])
        assert s.stats.queries == 2
        assert s.stats.reuse_hits == 1
        assert s.stats.propagations > 0
        assert s.stats.decisions >= 0

    def test_stats_mapping_surface(self):
        st = SolverStats(conflicts=2, queries=5)
        assert st["conflicts"] == 2
        st["conflicts"] = 3
        assert st.as_dict()["conflicts"] == 3
        with pytest.raises(KeyError):
            st["nope"] = 1
        other = SolverStats(conflicts=1, queries=2)
        st.add(other)
        assert st.conflicts == 4 and st.queries == 7
        st.add({"queries": 3})
        assert st.queries == 10


class TestModelEnumeration:
    def test_models_leaves_db_clean(self):
        s = make([[1, 2]])
        n_before = len(s.clauses)
        models = list(s.models())
        assert len(models) == 3
        # blocking clauses were removable and are purged afterwards;
        # at most the selector-retirement unit may linger
        assert all(
            not any(idx >> 1 > 2 for idx in c.lits) for c in s.clauses
        )
        assert len(s.clauses) <= n_before + 1
        again = list(s.models())
        # retired selectors from earlier rounds show up as fixed vars in
        # later full models; compare on the problem variables
        project = lambda ms: sorted((m[1], m[2]) for m in ms)  # noqa: E731
        assert project(models) == project(again)

    def test_models_under_assumptions_repeatable(self):
        s = make([[1, 2, 3]])
        first = list(s.models(project=[1, 2], assumptions=[3]))
        second = list(s.models(project=[1, 2], assumptions=[3]))
        assert len(first) == len(second) == 4
        assert s.solve([-3]) is SAT

    def test_limit_releases_cleanly(self):
        s = make([[1, 2]])
        got = list(s.models(limit=1))
        assert len(got) == 1
        assert len(list(s.models())) == 3
