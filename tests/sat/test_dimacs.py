"""DIMACS I/O tests."""

import pytest

from repro.sat.dimacs import parse_dimacs, solver_from_dimacs, to_dimacs


EXAMPLE = """\
c a comment
p cnf 3 3
1 -2 0
2 3 0
-1 0
"""


class TestParse:
    def test_parse(self):
        num_vars, clauses = parse_dimacs(EXAMPLE)
        assert num_vars == 3
        assert clauses == [[1, -2], [2, 3], [-1]]

    def test_multiline_clause(self):
        text = "p cnf 2 1\n1\n2 0\n"
        _, clauses = parse_dimacs(text)
        assert clauses == [[1, 2]]

    def test_trailing_clause_without_zero(self):
        text = "p cnf 2 1\n1 2"
        _, clauses = parse_dimacs(text)
        assert clauses == [[1, 2]]

    def test_bad_header(self):
        with pytest.raises(ValueError):
            parse_dimacs("p wcnf 1 1\n1 0\n")

    def test_comments_and_blank_lines(self):
        text = "c x\n\n%\np cnf 1 1\n1 0\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 1 and clauses == [[1]]


class TestRoundTrip:
    def test_roundtrip(self):
        num_vars, clauses = parse_dimacs(EXAMPLE)
        text = to_dimacs(num_vars, clauses)
        again_vars, again_clauses = parse_dimacs(text)
        assert again_vars == num_vars
        assert again_clauses == clauses

    def test_solver_from_dimacs(self):
        solver = solver_from_dimacs(EXAMPLE)
        assert solver.solve()
        model = solver.model()
        assert model[1] is False
        assert model[3] is True  # forced: -1 makes clause 1 give -2; 2|3

    def test_unsat_file(self):
        solver = solver_from_dimacs("p cnf 1 2\n1 0\n-1 0\n")
        assert not solver.solve()


class TestRoundTripEdgeCases:
    """serialize -> parse preserves clause sets (lint satellite)."""

    def test_empty_clause_list(self):
        text = to_dimacs(3, [])
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 3 and clauses == []

    def test_unit_and_long_clauses(self):
        clauses = [[1], [-1, 2, -3, 4, -5], [5]]
        num_vars, again = parse_dimacs(to_dimacs(5, clauses))
        assert num_vars == 5 and again == clauses

    def test_roundtrip_preserves_literal_order(self):
        clauses = [[3, -1, 2]]
        _, again = parse_dimacs(to_dimacs(3, clauses))
        assert again == clauses

    def test_comments_anywhere_are_skipped(self):
        text = "c head\np cnf 2 2\nc middle\n1 0\nc between\n-2 0\nc tail\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 2 and clauses == [[1], [-2]]

    def test_percent_terminator_lines(self):
        # SATLIB benchmark files end with "%" and a stray "0" clause line;
        # the comment rule must eat the "%" marker.
        text = "p cnf 1 1\n1 0\n%\n"
        num_vars, clauses = parse_dimacs(text)
        assert clauses == [[1]]

    def test_header_whitespace_tolerated(self):
        text = "p  cnf   3  1\n1 -2 3 0\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 3 and clauses == [[1, -2, 3]]

    def test_roundtrip_twice_is_stable(self):
        clauses = [[1, -2], [2, 3], [-1, -3], [2]]
        once = to_dimacs(3, clauses)
        twice = to_dimacs(*parse_dimacs(once))
        assert once == twice

    def test_solver_agrees_after_roundtrip(self):
        clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2]]  # UNSAT square
        solver = solver_from_dimacs(to_dimacs(2, clauses))
        assert not solver.solve()
