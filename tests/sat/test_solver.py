"""CDCL solver tests: hand cases, exhaustive cross-checks, classics."""

import itertools
import random

import pytest

from repro.sat.solver import SAT, UNSAT, Solver
from repro.sat.types import index_lit, lit_index, neg_index


def make(clauses):
    s = Solver()
    for c in clauses:
        s.add_clause(c)
    return s


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assign = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(assign[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def check_model(solver, clauses):
    model = solver.model()
    for clause in clauses:
        assert any(model.get(abs(l), False) == (l > 0) for l in clause)


class TestLiteralEncoding:
    def test_roundtrip(self):
        for lit in (1, -1, 5, -5, 123, -123):
            assert index_lit(lit_index(lit)) == lit

    def test_negation(self):
        assert index_lit(neg_index(lit_index(7))) == -7
        assert index_lit(neg_index(lit_index(-7))) == 7


class TestBasicSolving:
    def test_trivial_sat(self):
        s = make([[1]])
        assert s.solve() is SAT
        assert s.model()[1] is True

    def test_trivial_unsat(self):
        s = make([[1], [-1]])
        assert s.solve() is UNSAT

    def test_empty_clause_unsat(self):
        s = Solver()
        assert not s.add_clause([])
        assert s.solve() is UNSAT

    def test_implication_chain(self):
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        s = make(clauses)
        assert s.solve() is SAT
        assert all(s.model()[v] for v in (1, 2, 3, 4))

    def test_tautology_ignored(self):
        s = make([[1, -1], [2]])
        assert s.solve() is SAT
        assert s.model()[2] is True

    def test_duplicate_literals_collapsed(self):
        s = make([[1, 1, 1]])
        assert s.solve() is SAT

    def test_xor_chain(self):
        # x1 xor x2 = 1, x2 xor x3 = 1, x1 = x3 forced
        clauses = [[1, 2], [-1, -2], [2, 3], [-2, -3]]
        s = make(clauses)
        assert s.solve() is SAT
        m = s.model()
        assert m[1] != m[2] and m[2] != m[3]

    def test_conflict_then_sat(self):
        # requires actual search: at-most-one over three vars + at-least-one
        clauses = [[1, 2, 3], [-1, -2], [-1, -3], [-2, -3]]
        s = make(clauses)
        assert s.solve() is SAT
        check_model(s, clauses)


class TestPigeonhole:
    def php(self, holes):
        """holes+1 pigeons into `holes` holes — classically UNSAT."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_php_unsat(self, holes):
        assert make(self.php(holes)).solve() is UNSAT

    def test_php_sat_when_enough_holes(self):
        # holes pigeons into holes holes is satisfiable
        holes = 3
        var = lambda p, h: p * holes + h + 1
        clauses = [[var(p, h) for h in range(holes)] for p in range(holes)]
        for h in range(holes):
            for p1 in range(holes):
                for p2 in range(p1 + 1, holes):
                    clauses.append([-var(p1, h), -var(p2, h)])
        s = make(clauses)
        assert s.solve() is SAT
        check_model(s, clauses)


class TestRandomCrossCheck:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_3sat_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        num_clauses = rng.randint(2, 4 * num_vars)
        clauses = []
        for _ in range(num_clauses):
            width = rng.randint(1, 3)
            clause = [
                rng.choice([-1, 1]) * rng.randint(1, num_vars)
                for _ in range(width)
            ]
            clauses.append(clause)
        expected = brute_force_sat(num_vars, clauses)
        s = make(clauses)
        got = s.solve()
        assert got == expected
        if got:
            check_model(s, clauses)


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = make([[1, 2]])
        assert s.solve(assumptions=[-1]) is SAT
        assert s.model()[2] is True

    def test_conflicting_assumptions(self):
        s = make([[1, 2], [-2]])
        assert s.solve(assumptions=[-1]) is UNSAT
        # solver remains usable
        assert s.solve() is SAT

    def test_incremental_reuse(self):
        s = make([[1, 2], [-1, 3]])
        assert s.solve(assumptions=[1]) is SAT
        assert s.model()[3] is True
        assert s.solve(assumptions=[-3]) is SAT
        assert s.model()[1] is False


class TestModelEnumeration:
    def test_enumerates_all(self):
        s = make([[1, 2]])
        models = list(s.models())
        assert len(models) == 3  # TT TF FT

    def test_projection(self):
        s = make([[1, 2], [3, -3]])
        s._ensure_vars([3])
        models = list(s.models(project=[1, 2]))
        assert len(models) == 3

    def test_limit(self):
        s = make([[1, 2]])
        assert len(list(s.models(limit=2))) == 2

    def test_unsat_enumeration_empty(self):
        s = make([[1], [-1]])
        assert list(s.models()) == []

    def test_all_models_distinct_and_valid(self):
        clauses = [[1, 2, 3], [-1, -2]]
        s = make(clauses)
        seen = set()
        for m in s.models():
            key = tuple(sorted(m.items()))
            assert key not in seen
            seen.add(key)
            for clause in clauses:
                assert any(m[abs(l)] == (l > 0) for l in clause)
        assert len(seen) == sum(
            1
            for bits in itertools.product([False, True], repeat=3)
            if (bits[0] or bits[1] or bits[2])
            and not (bits[0] and bits[1])
        )


class TestStats:
    def test_stats_recorded(self):
        s = make([[1, 2, 3], [-1, -2], [-1, -3], [-2, -3], [-1]])
        s.solve()
        assert s.stats["propagations"] > 0
