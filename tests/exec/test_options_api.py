"""The options-object API, the legacy-kwargs shim, and the v2 JSON schema."""

import json

import pytest

from repro import __all__ as public_names
from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import (
    RESULT_SCHEMA_VERSION,
    SynthesisOptions,
    synthesize,
)
from repro.models.registry import get_model


def _config(bound: int = 3) -> EnumerationConfig:
    return EnumerationConfig(max_events=bound, max_addresses=2)


class TestSynthesisOptions:
    def test_loose_kwargs_form_raises(self):
        # The pre-1.1 shim (synthesize(model, bound=3, ...)) finished its
        # deprecation window; since 1.2 only the options-object and
        # request forms exist.
        with pytest.raises(TypeError, match="bound"):
            synthesize(get_model("tso"), bound=3, config=_config())

    def test_options_plus_kwargs_is_an_error(self):
        with pytest.raises(TypeError, match="bound"):
            synthesize(
                get_model("tso"),
                SynthesisOptions(bound=3, config=_config()),
                bound=3,
            )

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="max_bound"):
            synthesize(get_model("tso"), max_bound=3)

    def test_missing_options_names_the_replacement(self):
        with pytest.raises(TypeError, match="removed in 1.2"):
            synthesize(get_model("tso"), None)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            SynthesisOptions(bound=0)
        with pytest.raises(ValueError):
            SynthesisOptions(bound=3, jobs=0)
        with pytest.raises(ValueError):
            SynthesisOptions(bound=3, shards=0)

    def test_public_surface_exports(self):
        for name in (
            "synthesize",
            "SynthesisOptions",
            "SynthesisResult",
            "ExplicitOracle",
            "EARLY_REJECT",
            "get_model",
            "parse_test",
            "format_test",
        ):
            assert name in public_names, name


class TestResultSchema:
    def test_json_dict_schema_v3_envelope(self):
        result = synthesize(
            get_model("tso"),
            SynthesisOptions(bound=3, config=_config(), shards=3),
        )
        envelope = result.to_json_dict()
        json.dumps(envelope)  # must be serializable as-is
        assert envelope["schema"] == {
            "name": "synthesis-result",
            "version": RESULT_SCHEMA_VERSION,
        }
        assert RESULT_SCHEMA_VERSION == 3
        assert envelope["tool"] == "litmus-synth"
        assert envelope["command"] == "synthesize"
        payload = envelope["payload"]
        assert payload["model"] == "tso"
        assert payload["bound"] == 3
        assert payload["jobs"] == 1
        assert payload["shards"] == 3
        # The v2 split: wall-clock vs summed worker CPU, both present.
        assert payload["wall_seconds"] >= 0
        assert payload["cpu_seconds"] >= 0
        assert set(payload["suite_counts"]) == set(result.per_axiom) | {
            "union"
        }
        counts = result.counts()
        assert counts["wall_seconds"] == payload["wall_seconds"]
        assert counts["cpu_seconds"] == payload["cpu_seconds"]

    def test_elapsed_seconds_alias_warns(self):
        result = synthesize(
            get_model("tso"), SynthesisOptions(bound=3, config=_config())
        )
        with pytest.deprecated_call():
            alias = result.elapsed_seconds
        assert alias == result.wall_seconds

    def test_summary_mentions_wall_and_cpu(self):
        result = synthesize(
            get_model("tso"), SynthesisOptions(bound=3, config=_config())
        )
        text = result.summary()
        assert "wall" in text and "cpu" in text
