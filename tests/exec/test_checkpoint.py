"""Checkpoint store: resume, mismatch detection, torn-write tolerance."""

import json
import os

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.exec import CheckpointError, CheckpointStore
from repro.models.registry import get_model


def _options(checkpoint_dir=None, **overrides) -> SynthesisOptions:
    base = dict(
        bound=3,
        config=EnumerationConfig(max_events=3, max_addresses=2),
        shards=6,
        checkpoint_dir=checkpoint_dir,
    )
    base.update(overrides)
    return SynthesisOptions(**base)


def _shard_lines(directory):
    with open(os.path.join(directory, "shards.jsonl")) as fh:
        return fh.readlines()


class TestCheckpoint:
    def test_run_writes_one_line_per_shard(self, tmp_path):
        ckpt = str(tmp_path / "ck")
        synthesize(get_model("tso"), _options(checkpoint_dir=ckpt))
        assert os.path.exists(os.path.join(ckpt, "meta.json"))
        lines = _shard_lines(ckpt)
        assert len(lines) == 6
        assert sorted(json.loads(line)["shard"] for line in lines) == list(
            range(6)
        )

    def test_resume_after_partial_run_is_identical(self, tmp_path):
        tso = get_model("tso")
        baseline = synthesize(tso, _options())
        ckpt = str(tmp_path / "ck")
        synthesize(tso, _options(checkpoint_dir=ckpt))

        # Simulate a kill after two shards: drop the rest of the log.
        shards_path = os.path.join(ckpt, "shards.jsonl")
        lines = _shard_lines(ckpt)
        with open(shards_path, "w") as fh:
            fh.writelines(lines[:2])

        resumed = synthesize(tso, _options(checkpoint_dir=ckpt))
        assert resumed.union.to_json() == baseline.union.to_json()
        assert resumed.candidates == baseline.candidates
        assert resumed.unique_candidates == baseline.unique_candidates
        assert len(_shard_lines(ckpt)) == 6

    def test_torn_final_line_is_dropped_and_rerun(self, tmp_path):
        tso = get_model("tso")
        baseline = synthesize(tso, _options())
        ckpt = str(tmp_path / "ck")
        synthesize(tso, _options(checkpoint_dir=ckpt))

        shards_path = os.path.join(ckpt, "shards.jsonl")
        lines = _shard_lines(ckpt)
        with open(shards_path, "w") as fh:
            fh.writelines(lines[:3])
            fh.write(lines[4][: len(lines[4]) // 2])  # mid-write kill

        resumed = synthesize(tso, _options(checkpoint_dir=ckpt))
        assert resumed.union.to_json() == baseline.union.to_json()

    def test_option_mismatch_is_a_hard_error(self, tmp_path):
        tso = get_model("tso")
        ckpt = str(tmp_path / "ck")
        synthesize(tso, _options(checkpoint_dir=ckpt))
        with pytest.raises(CheckpointError, match="bound"):
            synthesize(
                tso,
                _options(
                    checkpoint_dir=ckpt,
                    bound=4,
                    config=EnumerationConfig(max_events=4, max_addresses=2),
                ),
            )

    def test_jobs_change_is_not_a_mismatch(self, tmp_path):
        # Resume may use a different worker count: jobs is scheduling,
        # not partitioning, so the fingerprint must not include it.
        tso = get_model("tso")
        ckpt = str(tmp_path / "ck")
        first = synthesize(tso, _options(checkpoint_dir=ckpt))
        second = synthesize(tso, _options(checkpoint_dir=ckpt, jobs=2))
        assert first.union.to_json() == second.union.to_json()

    def test_resume_with_default_shards_adopts_partition(self, tmp_path):
        # The CLI never pins shards, so the default count is derived
        # from jobs; a jobs=2 checkpoint resumed with jobs=1 must adopt
        # the stored partition instead of re-deriving (and mismatching).
        tso = get_model("tso")
        ckpt = str(tmp_path / "ck")
        first = synthesize(
            tso, _options(checkpoint_dir=ckpt, shards=None, jobs=2)
        )
        resumed = synthesize(
            tso, _options(checkpoint_dir=ckpt, shards=None, jobs=1)
        )
        assert resumed.shard_count == first.shard_count == 8
        assert first.union.to_json() == resumed.union.to_json()

    def test_store_rejects_foreign_meta(self, tmp_path):
        directory = str(tmp_path / "ck")
        CheckpointStore(directory, {"meta_version": 1, "model": "tso"})
        with pytest.raises(CheckpointError):
            CheckpointStore(directory, {"meta_version": 1, "model": "sc"})
