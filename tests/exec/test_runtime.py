"""The sharded runtime must be invisible in the output.

``jobs=N`` (and any shard count) is purely a scheduling decision: the
resulting suites, counters, and JSON serializations must be *identical*
to the sequential run.  These tests pin that contract through the real
``multiprocessing`` pool, not just the in-process shard loop.
"""

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.exec import plan_shards
from repro.models.registry import get_model


def _options(**overrides) -> SynthesisOptions:
    base = dict(
        bound=3,
        config=EnumerationConfig(max_events=3, max_addresses=2),
    )
    base.update(overrides)
    return SynthesisOptions(**base)


@pytest.fixture(scope="module")
def sequential():
    return synthesize(get_model("tso"), _options())


def assert_same_result(a, b):
    assert a.union.to_json() == b.union.to_json()
    assert set(a.per_axiom) == set(b.per_axiom)
    for axiom in a.per_axiom:
        assert a.per_axiom[axiom].to_json() == b.per_axiom[axiom].to_json()
    assert a.candidates == b.candidates
    assert a.unique_candidates == b.unique_candidates
    assert a.minimal_tests == b.minimal_tests


class TestShardedRuntime:
    def test_inprocess_sharding_matches_sequential(self, sequential):
        # jobs=1 + explicit shard count exercises the shard/merge path
        # without any subprocess in the way.
        result = synthesize(get_model("tso"), _options(shards=7))
        assert_same_result(sequential, result)

    def test_multiprocess_matches_sequential(self, sequential):
        result = synthesize(get_model("tso"), _options(jobs=2))
        assert_same_result(sequential, result)

    def test_shard_count_does_not_leak_into_output(self, sequential):
        for shards in (2, 5):
            result = synthesize(
                get_model("tso"), _options(jobs=2, shards=shards)
            )
            assert_same_result(sequential, result)

    def test_early_reject_sentinel_crosses_processes(self):
        from repro.core.synthesis import EARLY_REJECT

        seq = synthesize(get_model("tso"), _options(reject=EARLY_REJECT))
        par = synthesize(
            get_model("tso"), _options(reject=EARLY_REJECT, jobs=2)
        )
        assert_same_result(seq, par)

    def test_progress_reports_cumulative_candidates(self, sequential):
        seen = []
        result = synthesize(
            get_model("tso"), _options(shards=4, progress=seen.append)
        )
        assert seen == sorted(seen)
        assert seen[-1] == result.candidates == sequential.candidates

    def test_explicit_candidates_incompatible_with_jobs(self):
        tests = [entry.test for entry in synthesize(
            get_model("tso"), _options()
        ).union]
        with pytest.raises(ValueError, match="candidates"):
            synthesize(
                get_model("tso"), _options(jobs=2, candidates=tests)
            )

    def test_unpicklable_reject_rejected_up_front(self):
        oracle_probe = object()
        reject = lambda test: oracle_probe is None  # noqa: E731
        with pytest.raises(ValueError, match="picklable"):
            synthesize(get_model("tso"), _options(jobs=2, reject=reject))

    def test_plan_shards_defaults(self):
        assert plan_shards(1).count >= 1
        assert plan_shards(4).count >= 4
        assert plan_shards(2, shards=9).count == 9
        with pytest.raises(ValueError):
            plan_shards(2, shards=0)
