"""CLI surface for the parallel runtime: --jobs, --checkpoint-dir, --json."""

import json

from repro.cli import main


def _run(capsys, *extra):
    args = [
        "synthesize",
        "--model",
        "tso",
        "--bound",
        "3",
        "--max-addresses",
        "2",
        *extra,
    ]
    code = main(args)
    return code, capsys.readouterr().out


class TestCliParallel:
    def test_jobs_2_matches_jobs_1_json(self, capsys):
        code, seq_out = _run(capsys, "--json")
        assert code == 0
        code, par_out = _run(capsys, "--jobs", "2", "--json")
        assert code == 0
        seq_env, par_env = json.loads(seq_out), json.loads(par_out)
        for env in (seq_env, par_env):
            assert env["schema"] == {"name": "synthesis-result", "version": 3}
            assert env["tool"] == "litmus-synth"
            assert env["command"] == "synthesize"
        seq, par = seq_env["payload"], par_env["payload"]
        assert seq["suite_counts"] == par["suite_counts"]
        assert seq["candidates"] == par["candidates"]
        assert seq["unique_candidates"] == par["unique_candidates"]
        assert par["jobs"] == 2
        # timing fields vary run to run; everything else must not
        for key in ("model", "bound", "minimal_tests"):
            assert seq[key] == par[key]

    def test_json_output_is_pure(self, capsys):
        code, out = _run(capsys, "--json", "-v")
        assert code == 0
        json.loads(out)  # no text summary mixed in, even with -v

    def test_checkpoint_dir_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ck")
        code, first = _run(capsys, "--checkpoint-dir", ckpt, "--json")
        assert code == 0
        code, second = _run(capsys, "--checkpoint-dir", ckpt, "--json")
        assert code == 0
        assert (
            json.loads(first)["payload"]["suite_counts"]
            == json.loads(second)["payload"]["suite_counts"]
        )

    def test_checkpoint_mismatch_is_cli_error(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ck")
        code, _ = _run(capsys, "--checkpoint-dir", ckpt)
        assert code == 0
        code = main(
            [
                "synthesize",
                "--model",
                "tso",
                "--bound",
                "4",
                "--max-addresses",
                "2",
                "--checkpoint-dir",
                ckpt,
            ]
        )
        assert code == 2
        err = capsys.readouterr()
        assert "checkpoint" in (err.out + err.err).lower()
