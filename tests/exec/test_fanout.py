"""Generic deterministic shard fan-out (repro.exec.fanout)."""

import os

import pytest

from repro.exec.fanout import FanoutTask, run_fanout


# Module-level so the pool can pickle them by reference under both the
# fork and spawn start methods.
def _setup(payload):
    return {"base": payload["base"], "pid": os.getpid()}


def _work(state, shard_index):
    return state["base"] + shard_index


def _work_pid(state, shard_index):
    return (shard_index, state["pid"])


def _raise(state, shard_index):
    raise RuntimeError(f"shard {shard_index} exploded")


def _task(work=_work, shards=6):
    return FanoutTask(
        setup=_setup, work=work, payload={"base": 100}, shard_count=shards
    )


class TestRunFanout:
    def test_sequential(self):
        assert run_fanout(_task(), jobs=1) == [100, 101, 102, 103, 104, 105]

    def test_parallel_matches_sequential(self):
        assert run_fanout(_task(), jobs=3) == run_fanout(_task(), jobs=1)

    def test_results_ordered_by_shard_index(self):
        results = run_fanout(_task(work=_work_pid), jobs=2)
        assert [i for i, _ in results] == list(range(6))

    def test_setup_runs_once_per_worker(self):
        results = run_fanout(_task(work=_work_pid, shards=8), jobs=2)
        pids = {pid for _, pid in results}
        assert 1 <= len(pids) <= 2
        assert os.getpid() not in pids

    def test_jobs_one_stays_in_process(self):
        results = run_fanout(_task(work=_work_pid), jobs=1)
        assert {pid for _, pid in results} == {os.getpid()}

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="exploded"):
            run_fanout(_task(work=_raise), jobs=2)
        with pytest.raises(RuntimeError, match="shard 0 exploded"):
            run_fanout(_task(work=_raise), jobs=1)

    def test_more_jobs_than_shards(self):
        assert run_fanout(_task(shards=2), jobs=8) == [100, 101]
