"""summarize_trace_dir / render_trace_text over synthetic trace dirs."""

import json
import os

import pytest

from repro.obs import (
    Tracer,
    format_event,
    render_trace_text,
    summarize_trace_dir,
    trace_files,
)


def _write_driver(trace_dir):
    with Tracer(os.path.join(trace_dir, "driver.jsonl")) as tracer:
        with tracer.span("plan"):
            pass
        with tracer.span("shards"):
            pass
        with tracer.span("merge"):
            pass


def _write_shard(trace_dir, index, counters):
    path = os.path.join(trace_dir, f"shard-{index:04d}.jsonl")
    with Tracer(path) as tracer:
        with tracer.span("shard", shard=index):
            pass
        tracer.counters(counters, shard=index)


class TestSummarize:
    def test_phases_shards_and_counters(self, tmp_path):
        trace_dir = str(tmp_path)
        _write_driver(trace_dir)
        _write_shard(trace_dir, 1, {"candidates": 3, "analyses": 2})
        _write_shard(trace_dir, 0, {"candidates": 4, "analysis_hits": 6})
        payload = summarize_trace_dir(trace_dir)
        assert [p["name"] for p in payload["phases"]] == [
            "plan",
            "shards",
            "merge",
        ]
        assert [s["shard"] for s in payload["shards"]] == [0, 1]
        assert payload["counters"]["candidates"] == 7
        # rates derived from merged counters, misses + hits semantics
        assert payload["rates"]["analysis_hit_rate"] == pytest.approx(0.75)
        assert payload["spans"]["shard"]["count"] == 2
        assert payload["total_wall"] >= 0

    def test_meta_and_merged_stream(self, tmp_path):
        trace_dir = str(tmp_path)
        (tmp_path / "meta.json").write_text(
            json.dumps({"command": "synthesize", "model": "tso", "bound": 3})
        )
        with open(tmp_path / "merged.jsonl", "w") as fh:
            fh.write(format_event({"ev": "test", "item": 0, "pos": 0}))
            fh.write(format_event({"ev": "test", "item": 1, "pos": 0}))
            fh.write(format_event({"ev": "summary", "minimal": 2}))
        payload = summarize_trace_dir(trace_dir)
        assert payload["meta"]["model"] == "tso"
        assert payload["merged"]["tests"] == 2
        assert payload["merged"]["summary"] == {"minimal": 2}

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no trace files"):
            summarize_trace_dir(str(tmp_path))

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read trace dir"):
            summarize_trace_dir(str(tmp_path / "nope"))

    def test_trace_files_sorted(self, tmp_path):
        for name in ("shard-0001.jsonl", "driver.jsonl", "notes.txt"):
            (tmp_path / name).write_text("")
        assert trace_files(str(tmp_path)) == [
            "driver.jsonl",
            "shard-0001.jsonl",
        ]


class TestRenderText:
    def test_tables_mention_phases_shards_counters(self, tmp_path):
        trace_dir = str(tmp_path)
        _write_driver(trace_dir)
        _write_shard(trace_dir, 0, {"candidates": 4})
        text = render_trace_text(summarize_trace_dir(trace_dir))
        assert "phase" in text
        assert "plan" in text and "merge" in text
        assert "shard" in text
        assert "candidates = 4" in text
