"""--trace-dir end-to-end: deterministic merged streams across --jobs,
and span wall times that account for the run's wall clock."""

import json
import os

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.models.registry import get_model
from repro.obs import read_events, summarize_trace_dir


def _options(trace_dir, jobs):
    return SynthesisOptions(
        bound=3,
        config=EnumerationConfig(
            max_events=3, max_addresses=2, max_deps=0, max_rmws=0
        ),
        jobs=jobs,
        trace_dir=trace_dir,
    )


class TestMergedTraceDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_merged_stream_is_byte_identical_across_jobs(
        self, tmp_path, jobs
    ):
        model = get_model("tso")
        seq_dir = str(tmp_path / "seq")
        par_dir = str(tmp_path / f"par{jobs}")
        seq = synthesize(model, _options(seq_dir, jobs=1))
        par = synthesize(model, _options(par_dir, jobs=jobs))
        assert seq.union.to_json() == par.union.to_json()
        seq_bytes = open(os.path.join(seq_dir, "merged.jsonl"), "rb").read()
        par_bytes = open(os.path.join(par_dir, "merged.jsonl"), "rb").read()
        assert seq_bytes == par_bytes
        assert open(os.path.join(seq_dir, "meta.json"), "rb").read() == open(
            os.path.join(par_dir, "meta.json"), "rb"
        ).read()

    def test_merged_stream_structure(self, tmp_path):
        trace_dir = str(tmp_path / "t")
        result = synthesize(get_model("tso"), _options(trace_dir, jobs=1))
        events = list(
            read_events(os.path.join(trace_dir, "merged.jsonl"))
        )
        assert events[0]["ev"] == "header"
        assert events[1]["ev"] == "meta"
        tests = [e for e in events if e["ev"] == "test"]
        assert len(tests) == len(result.union)
        # test events are sorted by their deterministic merge key
        keys = [(e["item"], e["pos"]) for e in tests]
        assert keys == sorted(keys)
        assert all(e["digest"] for e in tests)
        summary = events[-1]
        assert summary["ev"] == "summary"
        assert summary["minimal"] == len(tests)
        # nothing wall-clock or worker-count dependent in the stream
        assert all("wall" not in e and "jobs" not in e for e in events)


class TestTraceAccountsForWall:
    def test_phase_walls_cover_run_wall(self, tmp_path):
        trace_dir = str(tmp_path / "t")
        result = synthesize(get_model("tso"), _options(trace_dir, jobs=2))
        payload = summarize_trace_dir(trace_dir)
        phase_names = [p["name"] for p in payload["phases"]]
        assert phase_names == ["plan", "replay", "shards", "merge"]
        total = payload["total_wall"]
        # summed driver span wall tracks the result's wall clock
        assert abs(total - result.wall_seconds) <= max(
            0.1 * result.wall_seconds, 0.05
        )

    def test_shard_counters_reach_the_trace(self, tmp_path):
        trace_dir = str(tmp_path / "t")
        result = synthesize(get_model("tso"), _options(trace_dir, jobs=2))
        payload = summarize_trace_dir(trace_dir)
        counters = payload["counters"]
        assert counters["candidates"] == result.candidates
        assert counters["unique_candidates"] == result.unique_candidates
        assert counters["minimal_records"] == len(result.union)

    def test_meta_is_deterministic_description(self, tmp_path):
        trace_dir = str(tmp_path / "t")
        synthesize(get_model("tso"), _options(trace_dir, jobs=4))
        meta = json.load(open(os.path.join(trace_dir, "meta.json")))
        assert meta["command"] == "synthesize"
        assert meta["model"] == "tso"
        assert meta["bound"] == 3
        assert "jobs" not in meta
