"""The Report envelope: round-trips and legacy-document rejection."""

import json

import pytest

from repro.obs import Report, load_report


class TestRoundTrip:
    def test_envelope_shape(self):
        report = Report(
            schema_name="synthesis-result",
            schema_version=3,
            command="synthesize",
            payload={"model": "tso"},
        )
        doc = report.to_json_dict()
        assert doc == {
            "schema": {"name": "synthesis-result", "version": 3},
            "tool": "litmus-synth",
            "command": "synthesize",
            "payload": {"model": "tso"},
        }

    def test_load_report_round_trips(self):
        report = Report(
            schema_name="trace-report",
            schema_version=1,
            command="report",
            payload={"phases": []},
        )
        loaded = load_report(report.to_json_dict())
        assert loaded == report

    def test_load_report_accepts_json_strings(self):
        report = Report(
            schema_name="difftest-campaign",
            schema_version=2,
            command="difftest",
            payload={"clean": True},
        )
        loaded = load_report(report.to_json(indent=None))
        assert loaded.payload == {"clean": True}

    def test_is_envelope(self):
        assert Report.is_envelope(
            {"schema": {"name": "x", "version": 1}, "payload": {}}
        )
        assert not Report.is_envelope({"schema_version": 2, "model": "tso"})
        assert not Report.is_envelope({"schema": {"name": "x"}, "payload": {}})


class TestLegacyRejection:
    """The pre-envelope shapes' deprecation window has closed: every
    bare legacy document is now a plain :class:`ValueError`."""

    def test_legacy_synthesis_result_rejected(self):
        legacy = {
            "schema_version": 2,
            "model": "tso",
            "suite_counts": {"union": 5},
            "minimal_tests": 5,
        }
        with pytest.raises(ValueError, match="no longer accepted"):
            load_report(legacy)

    def test_legacy_campaign_rejected(self):
        legacy = {"schema_version": 1, "mutant_kills": {}, "clean": True}
        with pytest.raises(ValueError, match="no longer accepted"):
            load_report(legacy)

    def test_legacy_bench_oracle_rejected(self):
        legacy = {
            "schema_version": 1,
            "incremental": {},
            "cold": {},
            "speedup": 2.0,
        }
        with pytest.raises(ValueError, match="no longer accepted"):
            load_report(legacy)

    def test_legacy_comparison_rejected(self):
        legacy = {
            "schema_version": 1,
            "fully_subsumed": True,
            "reference_only": {},
        }
        with pytest.raises(ValueError, match="no longer accepted"):
            load_report(legacy)

    def test_legacy_rejection_does_not_warn(self, recwarn):
        with pytest.raises(ValueError):
            load_report({"campaigns": {}})
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_unrecognisable_document_raises(self):
        with pytest.raises(ValueError):
            load_report({"something": "else"})
        with pytest.raises(ValueError):
            load_report(json.dumps([1, 2, 3]))


class TestLiveSurfacesAreEnvelopes:
    def test_all_json_surfaces_load(self):
        """Every ``--json``/BENCH producer emits a loadable envelope."""
        from repro.core.compare import SuiteComparison
        from repro.models.registry import get_model
        from repro.core.enumerator import EnumerationConfig
        from repro.core.synthesis import SynthesisOptions, synthesize

        config = EnumerationConfig(
            max_events=3, max_addresses=1, max_deps=0, max_rmws=0
        )
        result = synthesize(
            get_model("sc"), SynthesisOptions(bound=3, config=config)
        )
        loaded = load_report(result.to_json_dict())
        assert loaded.schema_name == "synthesis-result"
        assert loaded.schema_version == 3

        comparison = SuiteComparison("sc")
        loaded = load_report(comparison.to_json_dict())
        assert loaded.schema_name == "suite-comparison"
        assert loaded.schema_version == 2
