"""Tracer/Span event streams: nesting, headers, canonical serialization."""

import json

from repro.obs import (
    TRACE_SCHEMA_NAME,
    TRACE_SCHEMA_VERSION,
    BufferTracer,
    Tracer,
    format_event,
    header_event,
    null_tracer,
    read_events,
)


class TestEventStream:
    def test_header_is_first(self):
        tracer = BufferTracer()
        with tracer.span("x"):
            pass
        events = tracer.events()
        assert events[0] == {
            "ev": "header",
            "schema": {
                "name": TRACE_SCHEMA_NAME,
                "version": TRACE_SCHEMA_VERSION,
            },
        }

    def test_begin_then_span_with_wall(self):
        tracer = BufferTracer()
        with tracer.span("work", shard=3):
            pass
        begin, close = tracer.events()[1:]
        assert begin == {"ev": "begin", "id": 1, "name": "work", "parent": None}
        assert close["ev"] == "span"
        assert close["id"] == 1
        assert close["wall"] >= 0
        assert close["attrs"] == {"shard": 3}

    def test_nesting_records_parent(self):
        tracer = BufferTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {e["name"]: e for e in tracer.events() if e["ev"] == "span"}
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == spans["outer"]["id"]

    def test_annotate_adds_closing_attrs(self):
        tracer = BufferTracer()
        with tracer.span("phase") as span:
            span.annotate(items=9)
        close = tracer.events()[-1]
        assert close["attrs"] == {"items": 9}

    def test_counters_event(self):
        tracer = BufferTracer()
        tracer.counters({"b": 2, "a": 1}, shard=0)
        event = tracer.events()[-1]
        assert event["ev"] == "counters"
        assert event["counters"] == {"a": 1, "b": 2}
        assert event["shard"] == 0

    def test_format_event_is_canonical(self):
        line = format_event({"b": 1, "a": 2})
        assert line == '{"a":2,"b":1}\n'

    def test_null_tracer_times_but_writes_nothing(self):
        tracer = null_tracer()
        with tracer.span("anything"):
            pass
        tracer.counters({"x": 1})
        tracer.close()  # no error, no output


class TestFileSink:
    def test_writes_header_and_events(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path) as tracer:
            with tracer.span("s"):
                pass
        events = list(read_events(path))
        assert [e["ev"] for e in events] == ["header", "begin", "span"]

    def test_read_events_skips_torn_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            format_event(header_event()) + '{"ev":"begin","id":1,"na'
        )
        events = list(read_events(str(path)))
        assert [e["ev"] for e in events] == ["header"]

    def test_lines_parse_as_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path) as tracer:
            with tracer.span("a"):
                pass
        for line in open(path):
            json.loads(line)
