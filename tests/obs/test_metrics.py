"""MetricsRegistry, the Stats protocol, merge_metrics and derive_rates."""

from repro.obs import (
    MetricsRegistry,
    Stats,
    current_registry,
    derive_rates,
    merge_metrics,
    use_registry,
)


class _FakeStats:
    def as_metrics(self):
        return {"queries": 7, "hits": 3.0}


class TestStatsProtocol:
    def test_runtime_checkable(self):
        assert isinstance(_FakeStats(), Stats)
        assert not isinstance(object(), Stats)

    def test_solver_stats_implement_it(self):
        from repro.sat.solver import SolverStats

        assert isinstance(SolverStats(), Stats)

    def test_cnf_cache_implements_it(self):
        from repro.alloy.cache import CNFCache

        assert isinstance(CNFCache("fp"), Stats)

    def test_explicit_oracle_implements_it(self):
        from repro.core.oracle import ExplicitOracle
        from repro.models.registry import get_model

        assert isinstance(ExplicitOracle(get_model("sc")), Stats)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 2)
        reg.gauge("g", 1.5)
        assert reg.as_metrics()["a"] == 3
        assert reg.gauges()["g"] == 1.5
        assert reg.snapshot()["counters"] == {"a": 3}

    def test_histograms_summarize(self):
        reg = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        summary = reg.histogram_summary()["h"]
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["sum"] == 6.0

    def test_publish_stats_with_prefix(self):
        reg = MetricsRegistry()
        reg.publish(_FakeStats(), prefix="sat_")
        metrics = reg.as_metrics()
        assert metrics["sat_queries"] == 7
        # int-valued floats normalize to int
        assert metrics["sat_hits"] == 3
        assert isinstance(metrics["sat_hits"], int)

    def test_use_registry_scopes_the_current_one(self):
        outer = current_registry()
        inner = MetricsRegistry()
        with use_registry(inner):
            assert current_registry() is inner
            current_registry().count("only_inner")
        assert current_registry() is outer
        assert "only_inner" not in outer.as_metrics()
        assert inner.as_metrics()["only_inner"] == 1


class TestMergeAndRates:
    def test_merge_sums_keywise_and_skips_rates(self):
        merged = merge_metrics(
            {"a": 1, "b": 2.5, "x_rate": 0.9},
            {"a": 4, "c": 1},
        )
        assert merged == {"a": 5, "b": 2.5, "c": 1}

    def test_analysis_rate_counts_misses(self):
        # "analyses" counts cache MISSES: total calls = hits + misses.
        rates = derive_rates({"analyses": 25, "analysis_hits": 75})
        assert rates["analysis_hit_rate"] == 0.75

    def test_observe_rate_counts_misses(self):
        rates = derive_rates({"observations": 10, "observe_hits": 30})
        assert rates["observe_hit_rate"] == 0.75

    def test_compile_and_sat_rates(self):
        rates = derive_rates(
            {
                "compile_hits": 9,
                "compile_misses": 1,
                "sat_queries": 4,
                "sat_reuse_hits": 2,
            }
        )
        assert rates["compile_hit_rate"] == 0.9
        assert rates["sat_reuse_rate"] == 0.5

    def test_rates_are_conditional_on_constituents(self):
        assert derive_rates({"candidates": 5}) == {}
