"""Property-based tests for the relation algebra (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.rel import Rel

N = 5


@st.composite
def rels(draw, n=N):
    pairs = draw(
        st.sets(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=n * n,
        )
    )
    return Rel.from_pairs(n, pairs)


@given(rels(), rels())
def test_union_commutative(a, b):
    assert a | b == b | a


@given(rels(), rels(), rels())
def test_union_associative(a, b, c):
    assert (a | b) | c == a | (b | c)


@given(rels(), rels())
def test_intersection_subset_of_union(a, b):
    assert ((a & b) - (a | b)).is_empty()


@given(rels())
def test_difference_self_empty(a):
    assert (a - a).is_empty()


@given(rels())
def test_double_transpose_identity(a):
    assert ~~a == a


@given(rels(), rels())
def test_transpose_antidistributes_over_join(a, b):
    assert ~(a.join(b)) == (~b).join(~a)


@given(rels())
def test_closure_contains_relation(a):
    assert (a - a.plus()).is_empty()


@given(rels())
def test_closure_transitive(a):
    assert a.plus().is_transitive()


@given(rels())
def test_closure_idempotent(a):
    assert a.plus().plus() == a.plus()


@given(rels())
def test_closure_matches_pair_reachability(a):
    closed = a.plus()
    # Floyd-Warshall reference
    n = a.n
    reach = [[bool((a.rows[i] >> j) & 1) for j in range(n)] for i in range(n)]
    for k in range(n):
        for i in range(n):
            for j in range(n):
                reach[i][j] = reach[i][j] or (reach[i][k] and reach[k][j])
    assert {(i, j) for i in range(n) for j in range(n) if reach[i][j]} == set(
        closed.pairs()
    )


@given(rels())
def test_star_is_plus_plus_identity(a):
    assert a.star() == a.plus() | Rel.identity(a.n)


@given(rels(), rels())
def test_join_via_reference_semantics(a, b):
    expected = {
        (i, k)
        for i, j in a.pairs()
        for j2, k in b.pairs()
        if j == j2
    }
    assert set(a.join(b).pairs()) == expected


@given(rels())
def test_join_identity_neutral(a):
    iden = Rel.identity(a.n)
    assert a.join(iden) == a
    assert iden.join(a) == a


@given(rels(), st.integers(0, (1 << N) - 1))
def test_restrictions_shrink(a, mask):
    assert len(a.restrict_domain(mask)) <= len(a)
    assert len(a.restrict_range(mask)) <= len(a)
    assert set(a.restrict_domain(mask).pairs()) == {
        (i, j) for i, j in a.pairs() if (mask >> i) & 1
    }


@given(rels())
def test_acyclic_iff_no_diagonal_in_closure(a):
    assert a.is_acyclic() == a.plus().is_irreflexive()


@given(rels())
def test_domain_range_via_pairs(a):
    pairs = list(a.pairs())
    assert a.domain() == sum(
        1 << i for i in {i for i, _ in pairs}
    )
    assert a.range() == sum(1 << j for j in {j for _, j in pairs})


@given(st.lists(st.integers(0, N - 1), unique=True))
def test_total_order_properties(order):
    r = Rel.total_order(N, order)
    assert r.is_acyclic()
    assert r.is_transitive()
    assert len(r) == len(order) * (len(order) - 1) // 2
