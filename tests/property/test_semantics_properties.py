"""Property tests on execution semantics and model containment."""

from hypothesis import given, settings

from repro.core.oracle import ExplicitOracle
from repro.models.registry import get_model
from repro.semantics.enumerate import count_executions, enumerate_executions
from repro.semantics.relations import RelationView

from tests.property.strategies import plain_tests, scc_tests


@given(plain_tests)
@settings(max_examples=40, deadline=None)
def test_execution_count_matches(test):
    assert count_executions(test) == sum(
        1 for _ in enumerate_executions(test)
    )


@given(plain_tests)
@settings(max_examples=40, deadline=None)
def test_executions_distinct(test):
    keys = [
        (tuple(e.rf), e.co) for e in enumerate_executions(test)
    ]
    assert len(keys) == len(set(keys))


@given(plain_tests)
@settings(max_examples=30, deadline=None)
def test_sc_interleaving_always_exists(test):
    """Every test has at least one SC-valid execution (run threads in
    program order, one at a time)."""
    sc = get_model("sc")
    assert any(sc.is_valid(e) for e in enumerate_executions(test))


@given(plain_tests)
@settings(max_examples=25, deadline=None)
def test_model_strength_chain(test):
    """SC ⊆ TSO ⊆ Power on plain tests: anything a stronger model
    allows, a weaker one allows too."""
    sc = ExplicitOracle(get_model("sc")).analyze(test).model_valid
    tso = ExplicitOracle(get_model("tso")).analyze(test).model_valid
    power = ExplicitOracle(get_model("power")).analyze(test).model_valid
    assert sc <= tso <= power


@given(scc_tests)
@settings(max_examples=25, deadline=None)
def test_scc_weaker_than_sc(test):
    sc = ExplicitOracle(get_model("sc")).analyze(test).model_valid
    scc = ExplicitOracle(get_model("scc")).analyze(test).model_valid
    assert sc <= scc


@given(plain_tests)
@settings(max_examples=40, deadline=None)
def test_fr_disjoint_from_rf_inverse(test):
    """fr never relates a read back to its own source."""
    for e in enumerate_executions(test):
        v = RelationView(e)
        assert (v.fr & ~v.rf).is_empty()


@given(plain_tests)
@settings(max_examples=40, deadline=None)
def test_com_relates_same_address_only(test):
    for e in enumerate_executions(test):
        v = RelationView(e)
        assert (v.com - v.loc).is_empty()


@given(plain_tests)
@settings(max_examples=30, deadline=None)
def test_analysis_containment(test):
    """model-valid ⊆ each axiom's valid set ⊆ all outcomes."""
    oracle = ExplicitOracle(get_model("tso"))
    analysis = oracle.analyze(test)
    for valid in analysis.axiom_valid.values():
        assert analysis.model_valid <= valid <= analysis.all_outcomes
