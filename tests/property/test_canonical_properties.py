"""Property tests: canonicalization is a true symmetry-class invariant."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import canonical_form, canonicalize
from repro.litmus.events import Instruction
from repro.litmus.test import LitmusTest

from tests.property.strategies import plain_tests, scc_tests


def permute_threads(test, seed):
    rng = random.Random(seed)
    order = list(range(len(test.threads)))
    rng.shuffle(order)
    return LitmusTest(tuple(test.threads[t] for t in order))


def rename_addresses(test, seed):
    rng = random.Random(seed)
    addrs = list(test.addresses)
    renamed = addrs[:]
    rng.shuffle(renamed)
    mapping = dict(zip(addrs, renamed))
    threads = tuple(
        tuple(
            inst
            if inst.address is None
            else Instruction(
                inst.kind,
                mapping[inst.address],
                inst.order,
                inst.fence,
                inst.value,
                inst.scope,
            )
            for inst in thread
        )
        for thread in test.threads
    )
    return LitmusTest(threads)


@given(plain_tests, st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_thread_permutation_invariant(test, seed):
    assert canonical_form(test) == canonical_form(
        permute_threads(test, seed)
    )


@given(plain_tests, st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_address_renaming_invariant(test, seed):
    assert canonical_form(test) == canonical_form(
        rename_addresses(test, seed)
    )


@given(scc_tests)
@settings(max_examples=60, deadline=None)
def test_idempotent(test):
    once = canonical_form(test)
    assert canonical_form(once) == once


@given(scc_tests)
@settings(max_examples=60, deadline=None)
def test_event_map_preserves_instructions(test):
    canon, event_map, _addr_map = canonicalize(test)
    for orig, new in event_map.items():
        a, b = test.instruction(orig), canon.instruction(new)
        assert a.kind == b.kind
        assert a.order == b.order
        assert a.fence == b.fence


@given(plain_tests)
@settings(max_examples=60, deadline=None)
def test_canonical_preserves_shape(test):
    canon = canonical_form(test)
    assert canon.num_events == test.num_events
    assert sorted(len(t) for t in canon.threads) == sorted(
        len(t) for t in test.threads
    )
    assert len(canon.addresses) == len(test.addresses)
