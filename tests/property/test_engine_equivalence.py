"""Property test: the two relation engines agree on random relations.

``repro.semantics.rel.Rel`` (bitmask algebra, explicit engine) and
``repro.relational`` (boolean matrices over SAT, Alloy stack) implement
the same operators independently; on constant relations they must agree
operator by operator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import ast
from repro.relational.problem import Problem
from repro.relational.solve import ModelFinder
from repro.semantics.rel import Rel

N = 4


@st.composite
def pair_sets(draw):
    return draw(
        st.frozensets(
            st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
            max_size=N * N,
        )
    )


def relational_eval(expr_fn, a_pairs, b_pairs):
    """Evaluate an expression over constants through the SAT stack by
    asserting equality with a free relation and decoding the unique
    instance."""
    problem = Problem(N)
    problem.constant("a", set(a_pairs))
    problem.constant("b", set(b_pairs))
    problem.declare("out")
    finder = ModelFinder(problem)
    formula = ast.Eq(ast.Rel("out"), expr_fn(ast.Rel("a"), ast.Rel("b")))
    instance = finder.solve(formula)
    assert instance is not None
    return set(instance["out"])


def bitmask_pairs(rel):
    return set(rel.pairs())


OPS = {
    "union": (
        lambda a, b: a + b,
        lambda a, b: a | b,
    ),
    "inter": (
        lambda a, b: a & b,
        lambda a, b: a & b,
    ),
    "diff": (
        lambda a, b: a - b,
        lambda a, b: a - b,
    ),
    "join": (
        lambda a, b: a.join(b),
        lambda a, b: a.join(b),
    ),
    "transpose": (
        lambda a, b: ~a,
        lambda a, b: ~a,
    ),
    "closure": (
        lambda a, b: a.closure(),
        lambda a, b: a.plus(),
    ),
    "rclosure": (
        lambda a, b: a.rclosure(),
        lambda a, b: a.star(),
    ),
}


@given(pair_sets(), pair_sets(), st.sampled_from(sorted(OPS)))
@settings(max_examples=60, deadline=None)
def test_engines_agree(a_pairs, b_pairs, op):
    ast_fn, rel_fn = OPS[op]
    via_sat = relational_eval(ast_fn, a_pairs, b_pairs)
    via_bitmask = bitmask_pairs(
        rel_fn(Rel.from_pairs(N, a_pairs), Rel.from_pairs(N, b_pairs))
    )
    assert via_sat == via_bitmask, f"{op} disagrees"


@given(pair_sets())
@settings(max_examples=40, deadline=None)
def test_acyclicity_agrees(a_pairs):
    problem = Problem(N)
    problem.constant("a", set(a_pairs))
    finder = ModelFinder(problem)
    sat_says = finder.check(ast.Acyclic(ast.Rel("a")))
    bitmask_says = Rel.from_pairs(N, a_pairs).is_acyclic()
    assert sat_says == bitmask_says
