"""Hypothesis strategies for random litmus tests."""

from hypothesis import strategies as st

from repro.litmus.events import Order, read, write
from repro.litmus.test import LitmusTest

__all__ = ["plain_tests", "scc_tests"]


def _instruction(orders_r, orders_w, max_addr):
    addr = st.integers(0, max_addr - 1)
    reads = st.builds(read, addr, st.sampled_from(orders_r))
    writes = st.builds(
        write, addr, st.none(), st.sampled_from(orders_w)
    )
    return st.one_of(reads, writes)


def _tests(orders_r, orders_w, max_addr=2, max_threads=3, max_events=5):
    inst = _instruction(orders_r, orders_w, max_addr)
    thread = st.lists(inst, min_size=1, max_size=3).map(tuple)
    return (
        st.lists(thread, min_size=1, max_size=max_threads)
        .map(tuple)
        .filter(lambda ts: 2 <= sum(len(t) for t in ts) <= max_events)
        .map(LitmusTest)
    )


#: plain read/write tests (valid in every model's vocabulary)
plain_tests = _tests([Order.PLAIN], [Order.PLAIN])

#: tests with acquire/release annotations (SCC vocabulary)
scc_tests = _tests(
    [Order.PLAIN, Order.ACQ], [Order.PLAIN, Order.REL]
)
