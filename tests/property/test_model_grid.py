"""Cross-model synthesis grid: explicit vs relational vs prefilter.

For the newly formalized models, every oracle configuration must
synthesize the *same* suites — the relational formulas are twins of the
executable axioms, and the polynomial prefilter is a pure optimization
over the SAT path.  The grid runs armv8/rvwmo at bounds 2-3 (with the
dep bound tightened to keep the candidate space test-sized) plus the
vmem variants at bound 2, and compares suite membership per axiom.
"""

import functools

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import OracleSpec, SynthesisOptions, synthesize
from repro.models.registry import get_model

GRID = [
    ("armv8", 2),
    ("armv8", 3),
    ("rvwmo", 2),
    ("rvwmo", 3),
    ("sc_vmem", 2),
    ("tso_vmem", 2),
]


def _suites(result):
    return {
        name: [t.name for t in suite.tests()]
        for name, suite in result.per_axiom.items()
    } | {"union": [t.name for t in result.union.tests()]}


@functools.lru_cache(maxsize=None)
def _grid_point(model_name, bound, oracle, prefilter):
    model = get_model(model_name)
    config = EnumerationConfig(
        max_events=bound,
        max_deps=1,
        max_aliases=1 if model.vocabulary.has_vmem else 0,
    )
    result = synthesize(
        model,
        SynthesisOptions(
            bound=bound,
            config=config,
            oracle_spec=OracleSpec(oracle=oracle, prefilter=prefilter),
        ),
    )
    return result, _suites(result)


class TestOracleAgreement:
    @pytest.mark.parametrize("model_name,bound", GRID)
    def test_relational_matches_explicit(self, model_name, bound):
        _, explicit = _grid_point(model_name, bound, "explicit", False)
        _, relational = _grid_point(model_name, bound, "relational", False)
        assert relational == explicit

    @pytest.mark.parametrize("model_name,bound", GRID)
    def test_prefilter_matches_sat(self, model_name, bound):
        _, relational = _grid_point(model_name, bound, "relational", False)
        _, prefiltered = _grid_point(model_name, bound, "relational", True)
        assert prefiltered == relational

    @pytest.mark.parametrize(
        "model_name,bound", [("armv8", 3), ("rvwmo", 3)]
    )
    def test_bound3_suites_nonempty(self, model_name, bound):
        result, suites = _grid_point(model_name, bound, "explicit", False)
        assert suites["union"], "bound-3 union suite must be non-empty"
        assert result.candidates > 0


class TestVmemEnumeration:
    """The enhanced candidate stream must actually reach the oracles."""

    @pytest.mark.parametrize("model_name", ["sc_vmem", "tso_vmem"])
    def test_vmem_candidates_enumerated(self, model_name):
        from repro.core.enumerator import enumerate_tests

        model = get_model(model_name)
        config = EnumerationConfig(max_events=2, max_aliases=1)
        stream = list(enumerate_tests(model.vocabulary, config))
        assert any(
            any(i.is_vmem for i in t.instructions) for t in stream
        ), "vocabulary-declared vmem kinds must appear in candidates"
        assert any(t.addr_map is not None for t in stream), (
            "max_aliases=1 must produce aliased candidates"
        )

    def test_consistency_model_stream_unchanged(self):
        from repro.core.enumerator import enumerate_tests

        vocab = get_model("sc").vocabulary
        config = EnumerationConfig(max_events=2)
        stream = list(enumerate_tests(vocab, config))
        assert all(t.addr_map is None for t in stream)
        assert not any(
            any(i.is_vmem for i in t.instructions) for t in stream
        )
