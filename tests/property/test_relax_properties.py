"""Property tests: relaxations weaken, never strengthen."""

from hypothesis import given, settings

from repro.core.oracle import ExplicitOracle
from repro.litmus.execution import project_outcome
from repro.models.registry import get_model
from repro.relax.instruction import relaxations_for

from tests.property.strategies import plain_tests, scc_tests


def applications_of(model, test):
    vocab = model.vocabulary
    for relax in relaxations_for(vocab):
        for app in relax.applications(test, vocab):
            yield relax, app


@given(plain_tests)
@settings(max_examples=40, deadline=None)
def test_event_maps_well_formed(test):
    model = get_model("tso")
    for relax, app in applications_of(model, test):
        relaxed = relax.apply(test, app, model.vocabulary)
        survivors = [v for v in relaxed.event_map.values() if v is not None]
        # bijective onto the relaxed test's events
        assert sorted(survivors) == list(range(relaxed.test.num_events))
        assert set(relaxed.event_map.keys()) == set(
            range(test.num_events)
        )


@given(scc_tests)
@settings(max_examples=30, deadline=None)
def test_relaxations_preserve_validity_shape(test):
    """A relaxed test is structurally valid (constructor invariants)."""
    model = get_model("scc")
    for relax, app in applications_of(model, test):
        relaxed = relax.apply(test, app, model.vocabulary)
        assert relaxed.test.num_events >= 1


@given(scc_tests)
@settings(max_examples=20, deadline=None)
def test_relaxation_monotone_on_outcomes(test):
    """The fundamental direction of §3: weakening synchronization can
    only ADD observable behaviours.  Every valid outcome of the original
    test projects to a valid (partial) outcome of each relaxed test."""
    model = get_model("scc")
    oracle = ExplicitOracle(model)
    valid = oracle.analyze(test).model_valid
    for relax, app in applications_of(model, test):
        relaxed = relax.apply(test, app, model.vocabulary)
        for outcome in valid:
            projected = project_outcome(outcome, relaxed.event_map)
            assert oracle.observable(relaxed.test, projected), (
                f"{relax.name}@{app.target} removed behaviour "
                f"{outcome} from {test!r}"
            )


@given(plain_tests)
@settings(max_examples=30, deadline=None)
def test_ri_reduces_event_count(test):
    model = get_model("tso")
    vocab = model.vocabulary
    from repro.relax.instruction import RemoveInstruction

    ri = RemoveInstruction()
    for app in ri.applications(test, vocab):
        relaxed = ri.apply(test, app, vocab)
        assert relaxed.test.num_events == test.num_events - 1
