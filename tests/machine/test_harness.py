"""Suite-vs-machine harness tests: the paper's comprehensiveness claim,
checked operationally — each injected bug is caught by some synthesized
minimal test."""

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.machine.harness import run_suite
from repro.machine.tso_machine import Bug
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def synthesized_suite():
    tso = get_model("tso")
    result = synthesize(
        tso,
        SynthesisOptions(
            bound=5,
            config=EnumerationConfig(max_events=5, max_addresses=2),
        ),
    )
    return tso, result.union


class TestSuiteEffectiveness:
    def test_correct_machine_passes(self, synthesized_suite):
        tso, suite = synthesized_suite
        report = run_suite(suite, tso, Bug.NONE)
        assert report.tests_run == len(suite)
        assert not report.caught, [
            v.pretty() for v in report.violations
        ]

    @pytest.mark.parametrize(
        "bug",
        [
            Bug.NON_FIFO_BUFFER,
            Bug.NO_FORWARDING,
            Bug.UNLOCKED_RMW,
        ],
    )
    def test_synthesized_suite_catches_bug(self, synthesized_suite, bug):
        """Every injected bug whose mechanism fits within the bound is
        caught by at least one synthesized test.  (IGNORE_MFENCE needs
        the 6-instruction SB+mfences, beyond this suite's bound — that
        bound-sensitivity is itself the paper's point.)"""
        tso, suite = synthesized_suite
        report = run_suite(suite, tso, bug)
        assert report.caught, f"{bug} escaped the suite"

    def test_mfence_bug_needs_bound_six(self, synthesized_suite):
        tso, suite = synthesized_suite
        report = run_suite(suite, tso, Bug.IGNORE_MFENCE)
        # the bound-5 suite has no mfence-bearing minimal test...
        has_fence_test = any(
            inst.is_fence
            for entry in suite
            for inst in entry.test.instructions
        )
        # R+mfence (5 insts) is minimal and in the suite, so the bug IS
        # caught even at bound 5
        assert has_fence_test
        assert report.caught

    def test_report_summary(self, synthesized_suite):
        tso, suite = synthesized_suite
        report = run_suite(suite, tso, Bug.NON_FIFO_BUFFER)
        text = report.summary()
        assert "CAUGHT" in text
        assert str(report.tests_run) in text
        assert all("forbidden" in v.pretty() for v in report.violations)
