"""Operational TSO machine tests.

The headline property: exhaustive interleaving exploration of the
store-buffer machine produces *exactly* the outcome set the axiomatic
Fig.-4 TSO model allows — the operational/axiomatic equivalence of
Owens et al., checked empirically on the catalog."""

import pytest

from repro.core.oracle import ExplicitOracle
from repro.litmus.catalog import CATALOG, outcome_from_values
from repro.litmus.events import read, write
from repro.litmus.test import LitmusTest
from repro.machine.tso_machine import Bug, TsoMachine, explore
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def oracle():
    return ExplicitOracle(get_model("tso"))


EQUIVALENCE_TESTS = [
    "MP",
    "SB",
    "LB",
    "S",
    "R",
    "2+2W",
    "CoWW",
    "CoRR",
    "CoRW",
    "CoWR",
    "CoWR0",
    "CoRW1",
    "n4",
    "n5",
    "n6",
    "SB+mfences",
    "R+mfence",
    "IRIW",
    "WRC",
    "WWC",
    "W+W+RR",
    "n3",
    "iwp2.6",
    "iwp2.8.b",
]


class TestOperationalAxiomaticEquivalence:
    @pytest.mark.parametrize("name", EQUIVALENCE_TESTS)
    def test_equivalence(self, oracle, name):
        test = CATALOG[name].test
        operational = explore(test)
        axiomatic = oracle.analyze(test).model_valid
        assert operational == axiomatic, (
            f"{name}: operational-only "
            f"{sorted(o.pretty(test) for o in operational - axiomatic)}, "
            f"axiomatic-only "
            f"{sorted(o.pretty(test) for o in axiomatic - operational)}"
        )


class TestMachineMechanics:
    def test_store_forwarding(self):
        # CoWR0: the load must see the thread's own buffered store.
        t = CATALOG["CoWR0"].test
        outcomes = explore(t)
        assert len(outcomes) == 1
        (outcome,) = outcomes
        assert outcome.read_value(t, 1) == 1

    def test_store_buffering_visible(self):
        # SB: both threads read 0 — the TSO signature behaviour.
        t = CATALOG["SB"].test
        both_zero = outcome_from_values(
            t, reads={1: 0, 3: 0}, finals={0: 1, 1: 1}
        )
        assert both_zero in explore(t)

    def test_mfence_drains(self):
        t = CATALOG["SB+mfences"].test
        both_zero = outcome_from_values(
            t, reads={2: 0, 5: 0}, finals={0: 1, 1: 1}
        )
        assert both_zero not in explore(t)

    def test_rmw_atomic(self):
        t = LitmusTest(
            ((read(0), write(0)), (read(0), write(0))),
            rmw=frozenset({(0, 1), (2, 3)}),
        )
        # two atomic increments: both RMWs reading 0 is impossible
        for outcome in explore(t):
            reads = dict(outcome.rf_sources)
            assert not (reads[0] is None and reads[2] is None)

    def test_final_states_have_empty_buffers(self):
        machine = TsoMachine(CATALOG["MP"].test)
        state = machine.initial_state()
        assert not machine.is_final(state)


class TestBugInjection:
    def test_non_fifo_buffer_breaks_mp(self, oracle):
        t = CATALOG["MP"].test
        buggy = explore(t, Bug.NON_FIFO_BUFFER)
        valid = oracle.analyze(t).model_valid
        new = buggy - valid
        assert new, "non-FIFO buffer must be observable on MP"
        # the classic (r=1, r2=0) violation is among the new outcomes
        want = dict(CATALOG["MP"].forbidden.rf_sources)
        assert any(dict(o.rf_sources) == want for o in new)

    def test_ignore_mfence_breaks_sb_mfences(self, oracle):
        t = CATALOG["SB+mfences"].test
        buggy = explore(t, Bug.IGNORE_MFENCE)
        valid = oracle.analyze(t).model_valid
        assert buggy - valid

    def test_no_forwarding_breaks_cowr0(self, oracle):
        t = CATALOG["CoWR0"].test
        buggy = explore(t, Bug.NO_FORWARDING)
        valid = oracle.analyze(t).model_valid
        assert buggy - valid  # the load can now read 0

    def test_unlocked_rmw_breaks_atomicity(self, oracle):
        t = LitmusTest(
            ((read(0), write(0)), (write(0, 9),)),
            rmw=frozenset({(0, 1)}),
        )
        buggy = explore(t, Bug.UNLOCKED_RMW)
        valid = oracle.analyze(t).model_valid
        assert buggy - valid

    def test_bugs_do_not_break_unrelated_tests(self, oracle):
        """A buggy machine stays correct on tests that never exercise
        the broken mechanism."""
        t = CATALOG["CoWW"].test  # single thread, no fences/rmw/loads
        valid = oracle.analyze(t).model_valid
        assert explore(t, Bug.IGNORE_MFENCE) <= valid
        assert explore(t, Bug.NO_FORWARDING) <= valid
