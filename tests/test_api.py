"""Public API surface tests."""

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        result = repro.synthesize(
            repro.SynthesisRequest.build(
                "tso",
                bound=3,
                config=repro.EnumerationConfig(max_events=3, max_addresses=1),
            )
        )
        assert len(result.union) > 0
        for entry in result.union:
            assert entry.pretty()

    def test_loose_kwargs_form_was_removed(self):
        # The pre-1.1 loose-keyword shim is gone since 1.2: only the
        # options-object and SynthesisRequest forms are accepted.
        tso = repro.get_model("tso")
        with pytest.raises(TypeError):
            repro.synthesize(
                tso,
                bound=3,
                config=repro.EnumerationConfig(max_events=3, max_addresses=1),
            )

    def test_loose_oracle_fields_warn_but_bundle_into_spec(self):
        with pytest.deprecated_call():
            options = repro.SynthesisOptions(bound=3, oracle="relational")
        assert options.oracle_spec == repro.OracleSpec(oracle="relational")

    def test_build_and_check_a_test(self):
        test = repro.LitmusTest(
            (
                (repro.write(0, 1), repro.write(1, 1)),
                (repro.read(1), repro.read(0)),
            )
        )
        checker = repro.MinimalityChecker(repro.get_model("tso"))
        assert checker.check(test).is_minimal

    def test_available_models(self):
        assert set(repro.available_models()) >= {
            "sc",
            "tso",
            "power",
            "armv7",
            "scc",
            "c11",
        }

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_relaxations_exported(self):
        # the paper's six plus the transistency pair (DV, UA)
        assert len(repro.ALL_RELAXATIONS) == 8
        table = repro.applicability_table()
        assert "tso" in table

    def test_registry_rejects_unknown(self):
        import pytest

        with pytest.raises(KeyError):
            repro.get_model("m88k")

    def test_register_custom_model(self):
        from repro.models import register_model
        from repro.models.registry import MODEL_CLASSES

        class Custom(repro.get_model("sc").__class__):
            name = "custom-sc"

        try:
            register_model(Custom)
            assert repro.get_model("custom-sc").name == "custom-sc"
        finally:
            MODEL_CLASSES.pop("custom-sc", None)
