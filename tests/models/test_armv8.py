"""ARMv8 semantics: multi-copy-atomic judgments on catalog tests."""

import pytest

from repro.litmus.catalog import CATALOG, outcome_from_values
from repro.litmus.events import FenceKind, Order, read, write
from repro.litmus.test import LitmusTest
from repro.models.armv8 import ARMv8

from tests.models.conftest import observable

#: weak without barriers: the classic shapes are all observable
ALLOWED = ["MP", "SB", "LB", "IRIW", "WRC"]

#: coherence and barrier-restored shapes stay forbidden
FORBIDDEN = ["CoWW", "CoRR", "CoWR", "MP+syncs", "LB+datas", "SB+syncs"]


class TestARMv8Judgments:
    @pytest.mark.parametrize("name", ALLOWED)
    def test_allowed(self, oracles, name):
        assert observable(oracles("armv8"), name), (
            f"{name} must be allowed under ARMv8"
        )

    @pytest.mark.parametrize("name", FORBIDDEN)
    def test_forbidden(self, oracles, name):
        assert not observable(oracles("armv8"), name), (
            f"{name} must be forbidden under ARMv8"
        )

    def test_mp_relacq_forbidden(self, oracles):
        mp = LitmusTest(
            (
                (write(0, 1), write(1, 1, Order.REL)),
                (read(1, Order.ACQ), read(0)),
            ),
            name="MP+relacq",
        )
        forbidden = outcome_from_values(mp, {2: 1, 3: 0}, {})
        assert not oracles("armv8").observable(mp, forbidden), (
            "release/acquire half-barriers must restore MP ordering"
        )


class TestARMv8Model:
    def test_axiom_names(self):
        assert ARMv8().axiom_names() == (
            "sc_per_loc",
            "rmw_atomicity",
            "external",
        )

    def test_vocabulary(self):
        vocab = ARMv8().vocabulary
        assert vocab.fence_kinds == (FenceKind.SYNC,)
        assert Order.ACQ in vocab.read_orders
        assert Order.REL in vocab.write_orders
        assert vocab.allows_rmw
        assert vocab.has_deps
        assert vocab.has_orders
        assert not vocab.has_vmem

    def test_external_validates_catalog_entry(self):
        mp = CATALOG["MP"].test
        model = ARMv8()
        from repro.litmus.execution import Execution

        ok = Execution(mp, ((2, 1), (3, 0)), ((0,), (1,)))
        assert model.is_valid(ok)
        # the r0=1, r1=0 execution is weak but externally consistent
        weak = Execution(mp, ((2, 1), (3, None)), ((0,), (1,)))
        assert model.is_valid(weak)
