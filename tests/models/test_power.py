"""Power semantics: herding-cats judgments (paper §6.2, Fig. 15)."""

import pytest

from repro.litmus.catalog import CATALOG
from repro.litmus.events import DepKind, FenceKind, fence, read, write
from repro.litmus.execution import Execution
from repro.litmus.test import Dep, LitmusTest
from repro.models.armv7 import ARMv7
from repro.models.power import Power, power_fences, power_ppo
from repro.semantics.relations import RelationView

from tests.models.conftest import observable

FORBIDDEN = [
    "MP+syncs",
    "MP+sync+addr",
    "MP+lwsync+addr",
    "MP+lwsyncs",
    "SB+syncs",
    "LB+addrs",
    "LB+datas",
    "LB+addrs+WW",
    "MP+sync+ctrlisync",
    "WRC+sync+addr",
    "2+2W+syncs",
    "PPOAA",
    "PPOAA+lwsync",
    # coherence holds without fences
    "CoWW",
    "CoRR",
    "CoRW",
    "CoWR",
]

# Power's relaxed-by-default behaviours.
ALLOWED = [
    "MP",        # no fences, no deps -> reordering observable
    "SB",
    "LB",
    "S",
    "R",
    "2+2W",
    "WRC",
    "IRIW",      # Power is not multi-copy atomic
    "LB+datas+WW",   # data deps do not extend over po (unlike addr)
    "MP+sync+ctrl",  # ctrl alone does not order R->R
]


class TestPowerJudgments:
    @pytest.mark.parametrize("name", FORBIDDEN)
    def test_forbidden(self, oracles, name):
        assert not observable(oracles("power"), name), (
            f"{name} must be forbidden under Power"
        )

    @pytest.mark.parametrize("name", ALLOWED)
    def test_allowed(self, oracles, name):
        assert observable(oracles("power"), name), (
            f"{name} must be allowed under Power"
        )


class TestPowerDerivedRelations:
    def _view(self, test, rf, co):
        return RelationView(Execution(test, tuple(rf), tuple(co)))

    def test_ppo_includes_deps(self):
        t = LitmusTest(
            ((read(0), write(1, 1)),),
            deps=frozenset({Dep(0, 1, DepKind.DATA)}),
        )
        v = self._view(t, [(0, None)], [(), (1,)])
        assert (0, 1) in power_ppo(v)

    def test_ppo_excludes_undepended_rw(self):
        t = LitmusTest(((read(0), write(1, 1)),))
        v = self._view(t, [(0, None)], [(), (1,)])
        assert (0, 1) not in power_ppo(v)

    def test_addr_dep_extends_over_po(self):
        # cc0 contains addr;po: an address dependency orders everything
        # po-after its target (the LB+addrs+WW discriminator, §6.2).
        t = LitmusTest(
            ((read(0), write(1, 1), write(2, 1)),),
            deps=frozenset({Dep(0, 1, DepKind.ADDR)}),
        )
        v = self._view(t, [(0, None)], [(), (1,), (2,)])
        assert (0, 2) in power_ppo(v)

    def test_data_dep_does_not_extend(self):
        t = LitmusTest(
            ((read(0), write(1, 1), write(2, 1)),),
            deps=frozenset({Dep(0, 1, DepKind.DATA)}),
        )
        v = self._view(t, [(0, None)], [(), (1,), (2,)])
        assert (0, 2) not in power_ppo(v)

    def test_lwsync_excludes_write_read(self):
        t = LitmusTest(
            ((write(0, 1), fence(FenceKind.LWSYNC), read(1)),)
        )
        v = self._view(t, [(2, None)], [(0,), ()])
        assert power_fences(v).is_empty()

    def test_sync_orders_write_read(self):
        t = LitmusTest(((write(0, 1), fence(FenceKind.SYNC), read(1)),))
        v = self._view(t, [(2, None)], [(0,), ()])
        assert (0, 2) in power_fences(v)

    def test_lwsync_orders_write_write(self):
        t = LitmusTest(
            ((write(0, 1), fence(FenceKind.LWSYNC), write(1, 1)),)
        )
        v = self._view(t, [], [(0,), (2,)])
        assert (0, 2) in power_fences(v)

    def test_rfi_in_ppo_chain(self):
        # rfi is in ii0: forwarding a local store to a local load.
        t = LitmusTest(((write(0, 1), read(0)),))
        v = self._view(t, [(1, 0)], [(0,)])
        assert (0, 1) in power_ppo(v) or (0, 1) in v.rfi


class TestARMv7:
    def test_is_power_variant(self):
        assert issubclass(ARMv7, Power)

    def test_no_lwsync(self):
        vocab = ARMv7().vocabulary
        assert FenceKind.LWSYNC not in vocab.fence_kinds
        assert not vocab.has_fence_demotions

    def test_same_judgments_on_sync_tests(self, oracles):
        for name in ("MP+syncs", "SB+syncs", "LB+addrs"):
            entry = CATALOG[name]
            assert not oracles("armv7").observable(
                entry.test, entry.forbidden
            )

    def test_mp_allowed_without_sync(self, oracles):
        entry = CATALOG["MP"]
        assert oracles("armv7").observable(entry.test, entry.forbidden)
