"""RVWMO semantics: global-memory-order judgments on catalog tests."""

import pytest

from repro.litmus.events import FenceKind, Order, read, write
from repro.litmus.catalog import outcome_from_values
from repro.litmus.test import LitmusTest
from repro.models.rvwmo import RVWMO

from tests.models.conftest import observable

ALLOWED = ["MP", "SB", "LB", "IRIW", "WRC"]

FORBIDDEN = ["CoWW", "CoRR", "CoWR", "MP+syncs", "LB+datas", "SB+syncs"]


class TestRVWMOJudgments:
    @pytest.mark.parametrize("name", ALLOWED)
    def test_allowed(self, oracles, name):
        assert observable(oracles("rvwmo"), name), (
            f"{name} must be allowed under RVWMO"
        )

    @pytest.mark.parametrize("name", FORBIDDEN)
    def test_forbidden(self, oracles, name):
        assert not observable(oracles("rvwmo"), name), (
            f"{name} must be forbidden under RVWMO"
        )

    def test_mp_relacq_forbidden(self, oracles):
        mp = LitmusTest(
            (
                (write(0, 1), write(1, 1, Order.REL)),
                (read(1, Order.ACQ), read(0)),
            ),
            name="MP+relacq",
        )
        forbidden = outcome_from_values(mp, {2: 1, 3: 0}, {})
        assert not oracles("rvwmo").observable(mp, forbidden), (
            "RCsc annotations must restore MP ordering under RVWMO"
        )


class TestRVWMOModel:
    def test_axiom_names(self):
        assert RVWMO().axiom_names() == (
            "sc_per_loc",
            "rmw_atomicity",
            "ghb",
        )

    def test_vocabulary(self):
        vocab = RVWMO().vocabulary
        assert vocab.fence_kinds == (FenceKind.SYNC,)
        assert Order.ACQ in vocab.read_orders
        assert Order.REL in vocab.write_orders
        assert vocab.allows_rmw
        assert vocab.has_deps
        assert not vocab.has_vmem
