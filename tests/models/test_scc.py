"""SCC semantics: the model the paper introduces (§6.3, Fig. 17)."""

import pytest

from repro.core.oracle import ExplicitOracle
from repro.litmus.catalog import outcome_from_values
from repro.litmus.events import DepKind, FenceKind, Order, fence, read, write
from repro.litmus.test import Dep, LitmusTest
from repro.models.scc import SCC

X, Y = 0, 1
FSC = fence(FenceKind.FENCE_SC)
FAR = fence(FenceKind.FENCE_ACQ_REL)


@pytest.fixture(scope="module")
def oracle():
    return ExplicitOracle(SCC())


def _t(*threads, deps=(), rmw=()):
    return LitmusTest(
        tuple(tuple(th) for th in threads),
        frozenset(rmw),
        frozenset(deps),
    )


def mp(write_order=Order.PLAIN, read_order=Order.PLAIN):
    return _t(
        [write(X, 1), write(Y, 1, write_order)],
        [read(Y, read_order), read(X)],
    )


class TestMessagePassing:
    def test_mp_plain_allowed(self, oracle):
        t = mp()
        bad = outcome_from_values(t, reads={2: 1, 3: 0})
        assert oracle.observable(t, bad)

    def test_mp_release_acquire_forbidden(self, oracle):
        t = mp(Order.REL, Order.ACQ)
        bad = outcome_from_values(t, reads={2: 1, 3: 0})
        assert not oracle.observable(t, bad)

    def test_mp_release_only_allowed(self, oracle):
        t = mp(Order.REL, Order.PLAIN)
        bad = outcome_from_values(t, reads={2: 1, 3: 0})
        assert oracle.observable(t, bad)

    def test_mp_acquire_only_allowed(self, oracle):
        t = mp(Order.PLAIN, Order.ACQ)
        bad = outcome_from_values(t, reads={2: 1, 3: 0})
        assert oracle.observable(t, bad)

    def test_mp_acq_rel_fences_forbidden(self, oracle):
        t = _t(
            [write(X, 1), FAR, write(Y, 1)],
            [read(Y), FAR, read(X)],
        )
        bad = outcome_from_values(t, reads={3: 1, 5: 0})
        assert not oracle.observable(t, bad)


class TestStoreBuffering:
    def sb(self, f):
        return _t(
            [write(X, 1), f, read(Y)],
            [write(Y, 1), f, read(X)],
        )

    def test_sb_plain_allowed(self, oracle):
        t = _t([write(X, 1), read(Y)], [write(Y, 1), read(X)])
        bad = outcome_from_values(t, reads={1: 0, 3: 0})
        assert oracle.observable(t, bad)

    def test_sb_fence_sc_forbidden(self, oracle):
        # paper Fig. 18a: FenceSC restores SC for store buffering.
        t = self.sb(FSC)
        bad = outcome_from_values(t, reads={2: 0, 5: 0})
        assert not oracle.observable(t, bad)

    def test_sb_acq_rel_fence_insufficient(self, oracle):
        # acquire-release fences alone never forbid SB.
        t = self.sb(FAR)
        bad = outcome_from_values(t, reads={2: 0, 5: 0})
        assert oracle.observable(t, bad)


class TestThinAir:
    def test_lb_plain_allowed(self, oracle):
        t = _t([read(X), write(Y, 1)], [read(Y), write(X, 1)])
        bad = outcome_from_values(t, reads={0: 1, 2: 1})
        assert oracle.observable(t, bad)

    def test_lb_deps_forbidden(self, oracle):
        t = _t(
            [read(X), write(Y, 1)],
            [read(Y), write(X, 1)],
            deps=[Dep(0, 1, DepKind.DATA), Dep(2, 3, DepKind.DATA)],
        )
        bad = outcome_from_values(t, reads={0: 1, 2: 1})
        assert not oracle.observable(t, bad)


class TestCoherenceAndAtomicity:
    def test_corr_forbidden(self, oracle):
        t = _t([write(X, 1)], [read(X), read(X)])
        bad = outcome_from_values(t, reads={1: 1, 2: 0})
        assert not oracle.observable(t, bad)

    def test_rmw_atomicity(self, oracle):
        t = _t(
            [read(X), write(X)],
            [write(X, 9)],
            rmw=[(0, 1)],
        )
        bad = outcome_from_values(t, reads={0: 0}, finals={X: 1})
        assert not oracle.observable(t, bad)


class TestSyncChains:
    def test_release_to_acquire_chain_through_rmw(self, oracle):
        # Release write, RMW chain, acquire read: sync uses ^(rf+rmw).
        t = _t(
            [write(X, 1), write(Y, 1, Order.REL)],
            [read(Y), write(Y)],
            [read(Y, Order.ACQ), read(X)],
            rmw=[(2, 3)],
        )
        # reader acquires the rmw's write (value 2 at y) -> must see x=1
        bad = outcome_from_values(t, reads={2: 1, 4: 2, 5: 0})
        assert not oracle.observable(t, bad)

    def test_fence_sc_total_order_effect(self, oracle):
        # IRIW with SC fences between the reads is forbidden only thanks
        # to the sc total order.
        t = _t(
            [write(X, 1)],
            [write(Y, 1)],
            [read(X), FSC, read(Y)],
            [read(Y), FSC, read(X)],
        )
        bad = outcome_from_values(
            t, reads={2: 1, 4: 0, 5: 1, 7: 0}
        )
        assert not oracle.observable(t, bad)

    def test_iriw_acq_rel_fences_allowed(self, oracle):
        t = _t(
            [write(X, 1)],
            [write(Y, 1)],
            [read(X), FAR, read(Y)],
            [read(Y), FAR, read(X)],
        )
        bad = outcome_from_values(
            t, reads={2: 1, 4: 0, 5: 1, 7: 0}
        )
        assert oracle.observable(t, bad)


class TestWorkaroundAxioms:
    def test_wa_axioms_replace_causality(self):
        model = SCC()
        assert set(model.wa_axioms()) == set(model.axioms())
        assert (
            model.wa_axioms()["causality"]
            is not model.axioms()["causality"]
        )

    def test_uses_sc_order(self):
        assert SCC().uses_sc_order

    def test_vocabulary_demotions(self):
        vocab = SCC().vocabulary
        assert vocab.order_demotions[Order.ACQ] == (Order.PLAIN,)
        assert vocab.fence_demotions[FenceKind.FENCE_SC] == (
            FenceKind.FENCE_ACQ_REL,
        )
