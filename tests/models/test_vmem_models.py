"""Transistency-enhanced sc/tso variants: the translation_order axiom.

The discriminating shape: store buffering built from transistency events.
Plain SB is allowed under TSO, but when the participating events are
page-table walks or mapping updates, every ``po`` edge touching them
joins ``translation_order``'s acyclicity check, so the cycle closes and
the outcome flips to forbidden.  DV-demoting the events back to plain
reads/writes recovers the allowed verdict — exactly the weakening the
minimality criterion quantifies over.
"""

import pytest

from repro.core.oracle import ExplicitOracle
from repro.litmus.catalog import outcome_from_values
from repro.litmus.events import ptwalk, read, remap, write
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model
from repro.relax.transistency import DemoteVmemEvent
from repro.vmem.models import SCVmem, TSOVmem


def sb_outcome(test):
    return outcome_from_values(test, {1: 0, 3: 0}, {})


SB_PTWS = LitmusTest(
    ((write(0, 1), ptwalk(1)), (write(1, 1), ptwalk(0))),
    name="SB+ptws",
)
SB_REMAPS = LitmusTest(
    ((remap(0, 1), read(1)), (remap(1, 1), read(0))),
    name="SB+remaps",
)
SB_PLAIN = LitmusTest(
    ((write(0, 1), read(1)), (write(1, 1), read(0))),
    name="SB",
)


class TestTranslationOrder:
    @pytest.mark.parametrize("test", [SB_PTWS, SB_REMAPS], ids=lambda t: t.name)
    def test_vmem_sb_forbidden(self, test):
        oracle = ExplicitOracle(get_model("tso_vmem"))
        assert not oracle.observable(test, sb_outcome(test)), (
            f"{test.name} must be forbidden by translation_order"
        )

    def test_plain_sb_still_allowed(self):
        oracle = ExplicitOracle(get_model("tso_vmem"))
        assert oracle.observable(SB_PLAIN, sb_outcome(SB_PLAIN)), (
            "tso_vmem must not strengthen the consistency fragment"
        )

    def test_base_tso_allows_vmem_sb(self):
        oracle = ExplicitOracle(get_model("tso"))
        assert oracle.observable(SB_PTWS, sb_outcome(SB_PTWS))

    def test_dv_demotion_recovers_allowed(self):
        vocab = get_model("tso_vmem").vocabulary
        dv = DemoteVmemEvent()
        demoted = SB_PTWS
        for app in sorted(
            dv.applications(SB_PTWS, vocab), key=lambda a: a.target
        ):
            demoted = dv.apply(demoted, app, vocab).test
        assert not any(i.is_vmem for i in demoted.instructions)
        oracle = ExplicitOracle(get_model("tso_vmem"))
        assert oracle.observable(demoted, sb_outcome(demoted))


class TestVmemVocabulary:
    @pytest.mark.parametrize("cls", [SCVmem, TSOVmem])
    def test_declares_vmem(self, cls):
        model = cls()
        assert model.vocabulary.has_vmem
        assert len(model.vocabulary.vmem_kinds) == 3

    def test_axiom_names(self):
        assert SCVmem().axiom_names() == (
            "sequential_consistency",
            "rmw_atomicity",
            "translation_order",
        )
        assert TSOVmem().axiom_names() == (
            "sc_per_loc",
            "rmw_atomicity",
            "causality",
            "translation_order",
        )

    def test_aliased_coherence(self):
        # write through the virtual name, read back through the physical
        # one: same location, so coherence binds them.
        cowr = LitmusTest(
            ((write(1, 1), read(0)), (write(0, 2),)),
            addr_map=((1, 0),),
        )
        outcome = outcome_from_values(cowr, {1: 2}, {0: 1})
        oracle = ExplicitOracle(get_model("sc_vmem"))
        assert not oracle.observable(cowr, outcome), (
            "reading the interferer but finalizing the aliased write "
            "violates coherence over the merged location"
        )
