"""SC semantics tests."""

import pytest

from repro.litmus.catalog import CATALOG
from repro.models.sc import SC

from tests.models.conftest import observable

# Under SC even SB and R are forbidden.
FORBIDDEN = ["MP", "SB", "LB", "S", "R", "2+2W", "WRC", "IRIW", "CoRR", "CoWW"]


class TestSCJudgments:
    @pytest.mark.parametrize("name", FORBIDDEN)
    def test_forbidden(self, oracles, name):
        assert not observable(oracles("sc"), name)

    def test_sc_stricter_than_tso(self, oracles):
        """Everything SC allows, TSO allows (on the classic tests)."""
        sc, tso = oracles("sc"), oracles("tso")
        for name in ("MP", "SB", "LB", "n6"):
            entry = CATALOG[name]
            sc_allows = sc.observable(entry.test, entry.forbidden)
            tso_allows = tso.observable(entry.test, entry.forbidden)
            if sc_allows:
                assert tso_allows

    def test_interleavings_allowed(self, oracles):
        """SC allows everything that some interleaving produces: the
        (r=1, r2=1) outcome of MP, say."""
        from repro.litmus.catalog import outcome_from_values

        entry = CATALOG["MP"]
        ok = outcome_from_values(entry.test, reads={2: 1, 3: 1})
        assert oracles("sc").observable(entry.test, ok)

    def test_axioms(self):
        assert set(SC().axiom_names()) == {
            "sequential_consistency",
            "rmw_atomicity",
        }

    def test_no_fences_in_vocabulary(self):
        assert SC().vocabulary.fence_kinds == ()
