"""Shared helpers for model tests."""

import pytest

from repro.core.oracle import ExplicitOracle
from repro.litmus.catalog import CATALOG
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def oracles():
    """Memoized per-model oracles (module-scoped: caches are hot)."""
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = ExplicitOracle(get_model(name))
        return cache[name]

    return get


def observable(oracle, name):
    """Is the catalog entry's recorded outcome observable?"""
    entry = CATALOG[name]
    return oracle.observable(entry.test, entry.forbidden)
