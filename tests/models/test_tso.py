"""TSO semantics: published allowed/forbidden judgments (paper Fig. 4)."""

import pytest

from repro.litmus.catalog import CATALOG
from repro.litmus.events import FenceKind, fence, read, write
from repro.litmus.execution import Execution
from repro.litmus.test import LitmusTest
from repro.models.tso import TSO, tso_ppo
from repro.semantics.relations import RelationView

from tests.models.conftest import observable

FORBIDDEN = [
    "MP",
    "LB",
    "S",
    "2+2W",
    "WRC",
    "WWC",
    "IRIW",
    "SB+mfences",
    "R+mfence",
    "RWC+mfence",
    "CoWW",
    "CoRR",
    "CoRW",
    "CoWR",
    "CoRW1",
    "CoWR0",
    "W+W+RR",
    "n5",
    "n4",
    "n3",
    "iwp2.6",
    "iwp2.7",
    "iwp2.8.a",
    "iwp2.8.b",
    "amd10",
]

ALLOWED = ["SB", "R", "n6"]


class TestTSOJudgments:
    @pytest.mark.parametrize("name", FORBIDDEN)
    def test_forbidden(self, oracles, name):
        assert not observable(oracles("tso"), name), (
            f"{name} must be forbidden under TSO"
        )

    @pytest.mark.parametrize("name", ALLOWED)
    def test_allowed(self, oracles, name):
        assert observable(oracles("tso"), name), (
            f"{name} must be allowed under TSO"
        )


class TestTSOAxioms:
    def test_axiom_names(self):
        assert TSO().axiom_names() == (
            "sc_per_loc",
            "rmw_atomicity",
            "causality",
        )

    def test_ppo_drops_write_to_read(self):
        t = LitmusTest(((write(0, 1), read(1)),))
        v = RelationView(Execution(t, ((1, None),), ((0,), ())))
        assert tso_ppo(v).is_empty()

    def test_ppo_keeps_other_pairs(self):
        t = LitmusTest(((read(0), write(1, 1)),))
        v = RelationView(Execution(t, ((0, None),), ((), (1,))))
        assert (0, 1) in tso_ppo(v)

    def test_mfence_restores_write_read_order(self):
        # SB allowed; SB with one mfence still allowed; both -> forbidden
        sb_one = LitmusTest(
            (
                (write(0, 1), fence(FenceKind.MFENCE), read(1)),
                (write(1, 1), read(0)),
            )
        )
        tso = TSO()
        both_zero = []
        from repro.semantics.enumerate import enumerate_executions

        for ex in enumerate_executions(sb_one):
            if ex.rf_map == {2: None, 4: None} and tso.is_valid(ex):
                both_zero.append(ex)
        assert both_zero, "SB with a single mfence is still allowed"

    def test_rmw_atomicity_axiom(self):
        # RMW || interfering write: read 0 but write lands after the
        # interferer -> atomicity violated.
        t = LitmusTest(
            ((read(0), write(0)), (write(0, 9),)),
            rmw=frozenset({(0, 1)}),
        )
        tso = TSO()
        bad = Execution(t, ((0, None),), ((2, 1),))
        good = Execution(t, ((0, None),), ((1, 2),))
        assert not tso.satisfies(bad, "rmw_atomicity")
        assert tso.satisfies(good, "rmw_atomicity")

    def test_validate_full_model(self):
        mp = CATALOG["MP"].test
        tso = TSO()
        ok = Execution(mp, ((2, 1), (3, 0)), ((0,), (1,)))
        bad = Execution(mp, ((2, 1), (3, None)), ((0,), (1,)))
        assert tso.is_valid(ok)
        assert not bad.rf_map == ok.rf_map
        assert not tso.is_valid(bad)

    def test_vocabulary(self):
        vocab = TSO().vocabulary
        assert vocab.fence_kinds == (FenceKind.MFENCE,)
        assert vocab.allows_rmw
        assert not vocab.has_deps
        assert not vocab.has_orders
