"""C/C++11 semantics (RC11-flavoured; paper §6.4)."""

import pytest

from repro.core.oracle import ExplicitOracle
from repro.litmus.catalog import outcome_from_values
from repro.litmus.events import DepKind, FenceKind, Order, fence, read, write
from repro.litmus.test import Dep, LitmusTest
from repro.models.c11 import C11

X, Y = 0, 1
FSC = fence(FenceKind.FENCE_SC)


@pytest.fixture(scope="module")
def oracle():
    return ExplicitOracle(C11())


def _t(*threads, deps=(), rmw=()):
    return LitmusTest(
        tuple(tuple(th) for th in threads),
        frozenset(rmw),
        frozenset(deps),
    )


class TestMessagePassing:
    def mp(self, wo, ro):
        return _t(
            [write(X, 1, Order.RLX), write(Y, 1, wo)],
            [read(Y, ro), read(X, Order.RLX)],
        )

    def test_rel_acq_forbidden(self, oracle):
        t = self.mp(Order.REL, Order.ACQ)
        bad = outcome_from_values(t, reads={2: 1, 3: 0})
        assert not oracle.observable(t, bad)

    def test_relaxed_allowed(self, oracle):
        t = self.mp(Order.RLX, Order.RLX)
        bad = outcome_from_values(t, reads={2: 1, 3: 0})
        assert oracle.observable(t, bad)

    def test_release_without_acquire_allowed(self, oracle):
        t = self.mp(Order.REL, Order.RLX)
        bad = outcome_from_values(t, reads={2: 1, 3: 0})
        assert oracle.observable(t, bad)

    def test_fence_version_forbidden(self, oracle):
        # release fence before the flag write / acquire fence after the
        # flag read synchronize just like rel/acq accesses.
        t = _t(
            [
                write(X, 1, Order.RLX),
                fence(FenceKind.FENCE_REL),
                write(Y, 1, Order.RLX),
            ],
            [
                read(Y, Order.RLX),
                fence(FenceKind.FENCE_ACQ),
                read(X, Order.RLX),
            ],
        )
        bad = outcome_from_values(t, reads={3: 1, 5: 0})
        assert not oracle.observable(t, bad)

    def test_release_sequence_same_thread_write(self, oracle):
        # rs: a relaxed write po-loc-after a release write still carries
        # the release when read.
        t = _t(
            [
                write(X, 1, Order.RLX),
                write(Y, 1, Order.REL),
                write(Y, 2, Order.RLX),
            ],
            [read(Y, Order.ACQ), read(X, Order.RLX)],
        )
        bad = outcome_from_values(t, reads={3: 2, 4: 0})
        assert not oracle.observable(t, bad)


class TestStoreBuffering:
    def test_sb_sc_accesses_forbidden(self, oracle):
        t = _t(
            [write(X, 1, Order.SC), read(Y, Order.SC)],
            [write(Y, 1, Order.SC), read(X, Order.SC)],
        )
        bad = outcome_from_values(t, reads={1: 0, 3: 0})
        assert not oracle.observable(t, bad)

    def test_sb_rel_acq_allowed(self, oracle):
        t = _t(
            [write(X, 1, Order.REL), read(Y, Order.ACQ)],
            [write(Y, 1, Order.REL), read(X, Order.ACQ)],
        )
        bad = outcome_from_values(t, reads={1: 0, 3: 0})
        assert oracle.observable(t, bad)

    def test_sb_sc_fences_forbidden(self, oracle):
        t = _t(
            [write(X, 1, Order.RLX), FSC, read(Y, Order.RLX)],
            [write(Y, 1, Order.RLX), FSC, read(X, Order.RLX)],
        )
        bad = outcome_from_values(t, reads={2: 0, 5: 0})
        assert not oracle.observable(t, bad)


class TestCoherence:
    def test_corr_relaxed_forbidden(self, oracle):
        t = _t(
            [write(X, 1, Order.RLX)],
            [read(X, Order.RLX), read(X, Order.RLX)],
        )
        bad = outcome_from_values(t, reads={1: 1, 2: 0})
        assert not oracle.observable(t, bad)

    def test_coww_forbidden(self, oracle):
        t = _t([write(X, 1, Order.RLX), write(X, 2, Order.RLX)])
        bad = outcome_from_values(t, finals={X: 1})
        assert not oracle.observable(t, bad)


class TestThinAirAndAtomicity:
    def lb(self, deps=()):
        return _t(
            [read(X, Order.RLX), write(Y, 1, Order.RLX)],
            [read(Y, Order.RLX), write(X, 1, Order.RLX)],
            deps=deps,
        )

    def test_lb_relaxed_allowed(self, oracle):
        t = self.lb()
        bad = outcome_from_values(t, reads={0: 1, 2: 1})
        assert oracle.observable(t, bad)

    def test_lb_with_deps_forbidden(self, oracle):
        t = self.lb(
            deps=(Dep(0, 1, DepKind.DATA), Dep(2, 3, DepKind.DATA))
        )
        bad = outcome_from_values(t, reads={0: 1, 2: 1})
        assert not oracle.observable(t, bad)

    def test_rmw_atomicity(self, oracle):
        t = _t(
            [read(X, Order.RLX), write(X, order=Order.RLX)],
            [write(X, 9, Order.RLX)],
            rmw=[(0, 1)],
        )
        bad = outcome_from_values(t, reads={0: 0}, finals={X: 1})
        assert not oracle.observable(t, bad)


class TestIRIW:
    def iriw(self, wo, ro):
        return _t(
            [write(X, 1, wo)],
            [write(Y, 1, wo)],
            [read(X, ro), read(Y, ro)],
            [read(Y, ro), read(X, ro)],
        )

    def test_iriw_sc_forbidden(self, oracle):
        t = self.iriw(Order.SC, Order.SC)
        bad = outcome_from_values(t, reads={2: 1, 3: 0, 4: 1, 5: 0})
        assert not oracle.observable(t, bad)

    def test_iriw_acq_allowed(self, oracle):
        t = self.iriw(Order.REL, Order.ACQ)
        bad = outcome_from_values(t, reads={2: 1, 3: 0, 4: 1, 5: 0})
        assert oracle.observable(t, bad)


class TestVocabulary:
    def test_atomics_only(self):
        vocab = C11().vocabulary
        assert Order.PLAIN not in vocab.read_orders
        assert Order.PLAIN not in vocab.write_orders

    def test_demotion_lattice(self):
        vocab = C11().vocabulary
        assert set(vocab.order_demotions[Order.SC]) == {
            Order.ACQ,
            Order.REL,
        }
        assert vocab.order_demotions[Order.ACQ] == (Order.RLX,)
        assert set(vocab.fence_demotions[FenceKind.FENCE_ACQ_REL]) == {
            FenceKind.FENCE_ACQ,
            FenceKind.FENCE_REL,
        }
