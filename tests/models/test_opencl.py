"""Scoped-model semantics and the DS relaxation end-to-end."""

import pytest

from repro.core.minimality import MinimalityChecker
from repro.core.oracle import ExplicitOracle
from repro.litmus.catalog import outcome_from_values
from repro.litmus.events import Order, Scope, read, write
from repro.litmus.test import LitmusTest
from repro.models.opencl import OpenCL, inclusive_rel
from repro.models.registry import get_model

X, Y = 0, 1
WG, DEV = Scope.WORKGROUP, Scope.DEVICE


@pytest.fixture(scope="module")
def oracle():
    return ExplicitOracle(OpenCL())


def scoped_mp(w_scope, r_scope, groups):
    return LitmusTest(
        (
            (write(X, 1), write(Y, 1, Order.REL, scope=w_scope)),
            (read(Y, Order.ACQ, scope=r_scope), read(X)),
        ),
        scopes=groups,
    )


def forbidden_mp(test):
    return outcome_from_values(test, reads={2: 1, 3: 0})


class TestScopedSynchronization:
    def test_same_workgroup_wg_scope_suffices(self, oracle):
        t = scoped_mp(WG, WG, (0, 0))
        assert not oracle.observable(t, forbidden_mp(t))

    def test_cross_workgroup_wg_scope_insufficient(self, oracle):
        """The paper's DS motivation: 'if the scopes are made too
        narrow, the synchronization will be insufficient.'"""
        t = scoped_mp(WG, WG, (0, 1))
        assert oracle.observable(t, forbidden_mp(t))

    def test_cross_workgroup_device_scope_works(self, oracle):
        t = scoped_mp(DEV, DEV, (0, 1))
        assert not oracle.observable(t, forbidden_mp(t))

    def test_one_narrow_side_breaks_sync(self, oracle):
        t = scoped_mp(DEV, WG, (0, 1))
        assert oracle.observable(t, forbidden_mp(t))
        t = scoped_mp(WG, DEV, (0, 1))
        assert oracle.observable(t, forbidden_mp(t))

    def test_unscoped_tests_behave_like_scc(self, oracle):
        """Containment: with no scope annotations the model reduces to
        SCC exactly."""
        scc = ExplicitOracle(get_model("scc"))
        t = LitmusTest(
            (
                (write(X, 1), write(Y, 1, Order.REL)),
                (read(Y, Order.ACQ), read(X)),
            )
        )
        assert (
            oracle.analyze(t).model_valid
            == scc.analyze(t).model_valid
        )

    def test_coherence_is_scope_agnostic(self, oracle):
        t = LitmusTest(
            ((write(X, 1), write(X, 2)),),
            scopes=(0,),
        )
        bad = outcome_from_values(t, finals={X: 1})
        assert not oracle.observable(t, bad)


class TestInclusiveRel:
    def test_same_group_always_inclusive(self):
        t = scoped_mp(WG, WG, (0, 0))
        rel = inclusive_rel(t)
        assert (1, 2) in rel

    def test_cross_group_needs_device(self):
        t = scoped_mp(WG, DEV, (0, 1))
        rel = inclusive_rel(t)
        assert (1, 2) not in rel  # the @wg release does not cover T1
        t2 = scoped_mp(DEV, DEV, (0, 1))
        assert (1, 2) in inclusive_rel(t2)


class TestDSMinimality:
    @pytest.fixture(scope="class")
    def checker(self):
        return MinimalityChecker(OpenCL())

    def test_device_scope_minimal_across_groups(self, checker):
        """Cross-workgroup MP with @dev on both sides: demoting either
        scope re-allows the outcome, so the test is minimal."""
        t = scoped_mp(DEV, DEV, (0, 1))
        result = checker.check(t)
        assert result.is_minimal

    def test_device_scope_redundant_within_group(self, checker):
        """Same-workgroup MP with @dev: DS to @wg changes nothing, so
        the test fails the criterion (over-synchronized)."""
        t = scoped_mp(DEV, DEV, (0, 0))
        result = checker.check(t)
        assert not result.is_minimal
        assert result.blocking is not None
        assert result.blocking[0] == "DS"

    def test_wg_scope_minimal_within_group(self, checker):
        t = scoped_mp(WG, WG, (0, 0))
        assert checker.check(t).is_minimal

    def test_ds_applications_enumerated(self, checker):
        t = scoped_mp(DEV, DEV, (0, 1))
        apps = checker.applications(t)
        assert any(r.name == "DS" for r, _ in apps)


class _NoFenceOpenCL(OpenCL):
    """OpenCL with fences/rmw/deps stripped: keeps the synthesis test
    fast while still exercising scoped release/acquire."""

    name = "opencl-nofence-test"

    @property
    def vocabulary(self):
        base = super().vocabulary
        return type(base)(
            read_orders=base.read_orders,
            write_orders=base.write_orders,
            fence_kinds=(),
            dep_kinds=(),
            allows_rmw=False,
            order_demotions=base.order_demotions,
            fence_demotions={},
            scopes=base.scopes,
        )


class TestScopedSynthesis:
    def test_synthesis_emits_narrowest_sufficient_scopes(self):
        from repro.core.enumerator import EnumerationConfig
        from repro.core.synthesis import SynthesisOptions, synthesize

        res = synthesize(
            _NoFenceOpenCL(),
            SynthesisOptions(
                bound=4,
                axioms=["causality"],
                config=EnumerationConfig(
                    max_events=4,
                    min_events=4,
                    max_addresses=2,
                    max_threads=2,
                    max_thread_size=2,
                    max_deps=0,
                    max_rmws=0,
                ),
            ),
        )
        suite = list(res.per_axiom["causality"])
        scoped = [
            e
            for e in suite
            if any(
                inst.scope is not None for inst in e.test.instructions
            )
        ]
        assert scoped, "expected scoped minimal tests"
        # minimality forces the narrowest sufficient scope: @wg within a
        # single work-group, @dev only across groups (the DS story).
        for entry in suite:
            groups = entry.test.scopes or ()
            same_group = len(set(groups)) <= 1
            for inst in entry.test.instructions:
                if inst.scope is None:
                    continue
                if same_group:
                    assert inst.scope is Scope.WORKGROUP
                else:
                    assert inst.scope is Scope.DEVICE
