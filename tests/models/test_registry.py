"""Model registry tests."""

import pytest

from repro.models.base import MemoryModel
from repro.models.registry import (
    available_models,
    get_model,
    register_model,
)


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == {
            "sc",
            "tso",
            "power",
            "armv7",
            "armv8",
            "rvwmo",
            "scc",
            "c11",
            "opencl",
            "sc_vmem",
            "tso_vmem",
        }

    def test_get_model_fresh_instances(self):
        assert get_model("tso") is not get_model("tso")

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown memory model"):
            get_model("alpha")

    def test_register_requires_name(self):
        class Nameless(MemoryModel):
            @property
            def vocabulary(self):  # pragma: no cover
                raise NotImplementedError

            def axioms(self):  # pragma: no cover
                return {}

        with pytest.raises(ValueError):
            register_model(Nameless)

    def test_every_model_well_formed(self):
        for name in available_models():
            model = get_model(name)
            assert model.full_name
            assert model.axiom_names()
            vocab = model.vocabulary
            assert vocab.read_orders and vocab.write_orders
            # demotions must stay inside the vocabulary
            for src, dsts in vocab.order_demotions.items():
                assert src in vocab.read_orders + vocab.write_orders
            for src, dsts in vocab.fence_demotions.items():
                assert src in vocab.fence_kinds
                for dst in dsts:
                    assert dst in vocab.fence_kinds

    def test_repr(self):
        assert "tso" in repr(get_model("tso"))

    def test_wa_axioms_default_to_axioms(self):
        tso = get_model("tso")
        assert set(tso.wa_axioms()) == set(tso.axioms())
