"""Unit tests for the bitmask relation algebra."""

import pytest

from repro.semantics.rel import Rel


class TestConstruction:
    def test_empty(self):
        r = Rel.empty(4)
        assert len(r) == 0
        assert r.is_empty()
        assert not r

    def test_from_pairs(self):
        r = Rel.from_pairs(3, [(0, 1), (1, 2)])
        assert (0, 1) in r
        assert (1, 2) in r
        assert (0, 2) not in r
        assert len(r) == 2

    def test_from_pairs_out_of_range(self):
        with pytest.raises(ValueError):
            Rel.from_pairs(2, [(0, 2)])
        with pytest.raises(ValueError):
            Rel.from_pairs(2, [(-1, 0)])

    def test_identity(self):
        r = Rel.identity(3)
        assert list(r.pairs()) == [(0, 0), (1, 1), (2, 2)]

    def test_full(self):
        r = Rel.full(2)
        assert len(r) == 4

    def test_product(self):
        r = Rel.product(4, 0b0011, 0b1100)
        assert set(r.pairs()) == {(0, 2), (0, 3), (1, 2), (1, 3)}

    def test_total_order(self):
        r = Rel.total_order(4, [2, 0, 3])
        assert set(r.pairs()) == {(2, 0), (2, 3), (0, 3)}

    def test_total_order_empty(self):
        assert Rel.total_order(3, []).is_empty()

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError):
            Rel(2, (0,))


class TestSetAlgebra:
    def test_union(self):
        a = Rel.from_pairs(3, [(0, 1)])
        b = Rel.from_pairs(3, [(1, 2)])
        assert set((a | b).pairs()) == {(0, 1), (1, 2)}
        assert (a + b) == (a | b)

    def test_intersection(self):
        a = Rel.from_pairs(3, [(0, 1), (1, 2)])
        b = Rel.from_pairs(3, [(1, 2), (2, 0)])
        assert set((a & b).pairs()) == {(1, 2)}

    def test_difference(self):
        a = Rel.from_pairs(3, [(0, 1), (1, 2)])
        b = Rel.from_pairs(3, [(1, 2)])
        assert set((a - b).pairs()) == {(0, 1)}

    def test_transpose(self):
        a = Rel.from_pairs(3, [(0, 1), (1, 2)])
        assert set((~a).pairs()) == {(1, 0), (2, 1)}
        assert ~~a == a


class TestComposition:
    def test_join(self):
        a = Rel.from_pairs(3, [(0, 1)])
        b = Rel.from_pairs(3, [(1, 2)])
        assert set(a.join(b).pairs()) == {(0, 2)}
        assert set((a @ b).pairs()) == {(0, 2)}

    def test_join_identity(self):
        a = Rel.from_pairs(3, [(0, 1), (1, 2)])
        assert a.join(Rel.identity(3)) == a
        assert Rel.identity(3).join(a) == a

    def test_plus_chain(self):
        a = Rel.from_pairs(4, [(0, 1), (1, 2), (2, 3)])
        closed = a.plus()
        assert (0, 3) in closed
        assert (0, 2) in closed
        assert (3, 0) not in closed

    def test_plus_cycle(self):
        a = Rel.from_pairs(2, [(0, 1), (1, 0)])
        closed = a.plus()
        assert (0, 0) in closed
        assert (1, 1) in closed

    def test_star_includes_identity(self):
        a = Rel.from_pairs(3, [(0, 1)])
        s = a.star()
        assert (2, 2) in s
        assert (0, 1) in s

    def test_opt(self):
        a = Rel.from_pairs(2, [(0, 1)])
        assert a.opt() == a | Rel.identity(2)


class TestRestrictions:
    def test_domain_restriction(self):
        a = Rel.from_pairs(3, [(0, 1), (1, 2)])
        assert set(a.restrict_domain(0b001).pairs()) == {(0, 1)}

    def test_range_restriction(self):
        a = Rel.from_pairs(3, [(0, 1), (1, 2)])
        assert set(a.restrict_range(0b100).pairs()) == {(1, 2)}


class TestPredicates:
    def test_acyclic(self):
        assert Rel.from_pairs(3, [(0, 1), (1, 2)]).is_acyclic()
        assert not Rel.from_pairs(3, [(0, 1), (1, 0)]).is_acyclic()
        assert not Rel.from_pairs(1, [(0, 0)]).is_acyclic()

    def test_irreflexive(self):
        assert Rel.from_pairs(2, [(0, 1)]).is_irreflexive()
        assert not Rel.from_pairs(2, [(0, 0)]).is_irreflexive()

    def test_transitive(self):
        assert Rel.from_pairs(3, [(0, 1), (1, 2), (0, 2)]).is_transitive()
        assert not Rel.from_pairs(3, [(0, 1), (1, 2)]).is_transitive()


class TestIntrospection:
    def test_domain_range(self):
        a = Rel.from_pairs(3, [(0, 1), (1, 2)])
        assert a.domain() == 0b011
        assert a.range() == 0b110

    def test_image(self):
        a = Rel.from_pairs(3, [(0, 1), (1, 2)])
        assert a.image(0b001) == 0b010
        assert a.image(0b011) == 0b110

    def test_eq_hash(self):
        a = Rel.from_pairs(3, [(0, 1)])
        b = Rel.from_pairs(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rel.from_pairs(3, [(1, 0)])
        assert a != "not a rel"

    def test_repr(self):
        assert "0->1" in repr(Rel.from_pairs(2, [(0, 1)]))
