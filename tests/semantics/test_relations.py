"""Unit tests for the relational view of executions."""

from repro.litmus.events import DepKind, FenceKind, fence, read, write
from repro.litmus.execution import Execution
from repro.litmus.test import Dep, LitmusTest
from repro.semantics.relations import RelationView, StaticRelations


def view_of(test, rf=(), co=(), sc=()):
    return RelationView(Execution(test, tuple(rf), tuple(co), tuple(sc)))


def mp():
    return LitmusTest(((write(0, 1), write(1, 1)), (read(1), read(0))))


class TestStaticRelations:
    def test_po_within_threads_only(self):
        v = view_of(mp(), rf=((2, None), (3, None)), co=((0,), (1,)))
        assert set(v.po.pairs()) == {(0, 1), (2, 3)}

    def test_po_imm(self):
        t = LitmusTest(((write(0, 1), write(0, 2), write(0, 3)),))
        v = view_of(t, co=((0, 1, 2),))
        assert set(v.po_imm.pairs()) == {(0, 1), (1, 2)}

    def test_loc_same_address(self):
        v = view_of(mp(), rf=((2, None), (3, None)), co=((0,), (1,)))
        assert (0, 3) in v.loc
        assert (3, 0) in v.loc
        assert (0, 2) not in v.loc

    def test_po_loc(self):
        t = LitmusTest(((write(0, 1), read(0), read(1)),))
        v = view_of(t, rf=((1, 0), (2, None)), co=((0,),))
        assert set(v.po_loc.pairs()) == {(0, 1)}

    def test_int_ext_partition(self):
        v = view_of(mp(), rf=((2, None), (3, None)), co=((0,), (1,)))
        assert (0, 1) in v.int_
        assert (1, 0) in v.int_
        assert (0, 2) in v.ext
        assert (0, 0) not in v.int_
        assert (0, 0) not in v.ext

    def test_dep_selection(self):
        t = LitmusTest(
            ((read(0), write(1, 1), read(2)),),
            deps=frozenset(
                {Dep(0, 1, DepKind.DATA), Dep(0, 2, DepKind.CTRLISYNC)}
            ),
        )
        v = view_of(t, rf=((0, None), (2, None)), co=((), (1,), ()))
        assert set(v.data_dep.pairs()) == {(0, 1)}
        assert set(v.ctrlisync_dep.pairs()) == {(0, 2)}
        assert (0, 2) in v.ctrl_dep  # ctrlisync is a ctrl dep
        assert len(v.all_deps) == 2

    def test_static_shared_between_views(self):
        t = mp()
        a = RelationView(Execution(t, ((2, None), (3, None)), ((0,), (1,))))
        b = RelationView(Execution(t, ((2, 1), (3, 0)), ((0,), (1,))))
        assert a.static is b.static
        assert StaticRelations.of(t) is a.static

    def test_fence_rel(self):
        t = LitmusTest(
            ((write(0, 1), fence(FenceKind.SYNC), read(1)),)
        )
        v = view_of(t, rf=((2, None),), co=((0,), ()))
        assert set(v.fence_rel(FenceKind.SYNC).pairs()) == {(0, 2)}
        assert v.fence_rel(FenceKind.LWSYNC).is_empty()

    def test_class_products(self):
        v = view_of(mp(), rf=((2, None), (3, None)), co=((0,), (1,)))
        assert (0, 2) in v.W_R
        assert (2, 0) in v.R_W
        assert (0, 1) in v.W_W
        assert (2, 3) in v.R_R


class TestDynamicRelations:
    def test_rf_direction(self):
        v = view_of(mp(), rf=((2, 1), (3, 0)), co=((0,), (1,)))
        assert (1, 2) in v.rf  # write -> read
        assert (2, 1) not in v.rf

    def test_rfi_rfe_split(self):
        t = LitmusTest(((write(0, 1), read(0)), (read(0),)))
        v = view_of(t, rf=((1, 0), (2, 0)), co=((0,),))
        assert (0, 1) in v.rfi
        assert (0, 2) in v.rfe

    def test_co_transitive(self):
        t = LitmusTest(((write(0, 1), write(0, 2), write(0, 3)),))
        v = view_of(t, co=((0, 1, 2),))
        assert (0, 2) in v.co
        assert v.co.is_transitive()

    def test_fr_from_source(self):
        t = LitmusTest(((read(0),), (write(0, 1),), (write(0, 2),)))
        v = view_of(t, rf=((0, 1),), co=((1, 2),))
        assert set(v.fr.pairs()) == {(0, 2)}

    def test_fr_initial_read(self):
        t = LitmusTest(((read(0),), (write(0, 1),), (write(0, 2),)))
        v = view_of(t, rf=((0, None),), co=((1, 2),))
        assert set(v.fr.pairs()) == {(0, 1), (0, 2)}

    def test_com_union(self):
        v = view_of(mp(), rf=((2, 1), (3, None)), co=((0,), (1,)))
        assert (1, 2) in v.com  # rf
        assert (3, 0) in v.com  # fr

    def test_sc_rel(self):
        t = LitmusTest(
            (
                (write(0, 1), fence(FenceKind.FENCE_SC)),
                (write(1, 1), fence(FenceKind.FENCE_SC)),
            )
        )
        v = view_of(t, co=((0,), (2,)), sc=(3, 1))
        assert set(v.sc.pairs()) == {(3, 1)}

    def test_coe_coi(self):
        t = LitmusTest(((write(0, 1), write(0, 2)), (write(0, 3),)))
        v = view_of(t, co=((0, 1, 2),))
        assert (0, 1) in v.coi
        assert (1, 2) in v.coe
