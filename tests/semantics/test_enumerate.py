"""Unit tests for execution enumeration."""

from repro.litmus.events import FenceKind, fence, read, write
from repro.litmus.execution import Outcome
from repro.litmus.test import LitmusTest
from repro.semantics.enumerate import (
    count_executions,
    enumerate_executions,
    outcome_satisfied,
)


def mp():
    return LitmusTest(((write(0, 1), write(1, 1)), (read(1), read(0))))


class TestEnumeration:
    def test_mp_execution_count(self):
        # two reads, each with two candidate sources; trivial co.
        executions = list(enumerate_executions(mp()))
        assert len(executions) == 4
        assert count_executions(mp()) == 4

    def test_coherence_permutations(self):
        t = LitmusTest(((write(0, 1),), (write(0, 2),), (write(0, 3),)))
        assert count_executions(t) == 6
        orders = {ex.co[0] for ex in enumerate_executions(t)}
        assert len(orders) == 6

    def test_read_sources_include_all_writes(self):
        t = LitmusTest(((read(0),), (write(0, 1),), (write(0, 2),)))
        sources = {ex.rf[0][1] for ex in enumerate_executions(t)}
        assert sources == {None, 1, 2}

    def test_sc_fence_enumeration(self):
        t = LitmusTest(
            (
                (write(0, 1), fence(FenceKind.FENCE_SC), read(1)),
                (write(1, 1), fence(FenceKind.FENCE_SC), read(0)),
            )
        )
        plain = count_executions(t, with_sc=False)
        with_sc = count_executions(t, with_sc=True)
        assert with_sc == 2 * plain
        scs = {ex.sc for ex in enumerate_executions(t, with_sc=True)}
        assert scs == {(1, 4), (4, 1)}

    def test_sc_flag_without_fences(self):
        assert count_executions(mp(), with_sc=True) == 4

    def test_outcomes_cover_projection(self):
        outs = {ex.outcome for ex in enumerate_executions(mp())}
        assert len(outs) == 4

    def test_count_matches_enumeration_with_rmw(self):
        t = LitmusTest(
            ((read(0), write(0)), (write(0, 9),)),
            rmw=frozenset({(0, 1)}),
        )
        assert count_executions(t) == sum(
            1 for _ in enumerate_executions(t)
        )


class TestOutcomeSatisfied:
    def test_total_match(self):
        ex = next(iter(enumerate_executions(mp())))
        assert outcome_satisfied(ex, ex.outcome)

    def test_partial_match(self):
        test = mp()
        for ex in enumerate_executions(test):
            if ex.rf_map == {2: 1, 3: None}:
                break
        partial = Outcome(((2, 1),), ())
        assert outcome_satisfied(ex, partial)
        mismatched = Outcome(((2, None),), ())
        assert not outcome_satisfied(ex, mismatched)

    def test_final_constraint(self):
        test = mp()
        ex = next(iter(enumerate_executions(test)))
        good = Outcome((), ((0, 0),))
        bad = Outcome((), ((0, None),))
        assert outcome_satisfied(ex, good)
        assert not outcome_satisfied(ex, bad)

    def test_unknown_read_fails(self):
        ex = next(iter(enumerate_executions(mp())))
        assert not outcome_satisfied(ex, Outcome(((99, None),), ()))

    def test_untouched_address_is_initial(self):
        # an address the test never accesses keeps its initial value, so
        # a None constraint holds and a write constraint cannot.
        ex = next(iter(enumerate_executions(mp())))
        assert outcome_satisfied(ex, Outcome((), ((99, None),)))
        assert not outcome_satisfied(ex, Outcome((), ((99, 1),)))
