"""Section 6.4: C/C++11 suite synthesis.

The paper highlights how software-model synthesis differs: the memory
order lattice (Table 1) gives DMO multiple demotion variants, so the
per-axiom suites grow faster with bound than the hardware models'.
"""

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.events import Order
from repro.models.registry import get_model

from _common import large_bounds_enabled, run_once

BOUNDS = (2, 3, 4) if not large_bounds_enabled() else (2, 3, 4, 5)


def c11_config(bound: int) -> EnumerationConfig:
    # the order lattice is the point here (3 read x 3 write orders plus
    # four fence kinds); keep the structural dimensions small
    return EnumerationConfig(
        max_events=bound,
        max_addresses=2,
        max_deps=0,
        max_rmws=1,
        max_threads=2,
        max_thread_size=2,
    )


@pytest.fixture(scope="module")
def sweep():
    c11 = get_model("c11")
    return {
        bound: synthesize(c11, SynthesisOptions(bound=bound, config=c11_config(bound)))
        for bound in BOUNDS
    }


class TestSection64:
    def test_per_axiom_counts(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        axioms = get_model("c11").axiom_names()
        report.append("[§6.4] bound | " + " | ".join(axioms) + " | union")
        for bound in BOUNDS:
            counts = sweep[bound].counts()
            row = " | ".join(f"{counts[a]:4d}" for a in axioms)
            report.append(
                f"[§6.4] {bound:5d} | {row} | {counts['union']:5d}"
            )
        assert sweep[BOUNDS[-1]].counts()["union"] > 0

    def test_memory_orders_exercised(self, sweep, report, benchmark):
        """The suites must span the C11 order lattice: minimal tests
        with relaxed, acquire/release, and seq_cst annotations."""
        run_once(benchmark, lambda: None)
        bound = BOUNDS[-1]
        orders_used = {
            inst.order
            for entry in sweep[bound].union
            for inst in entry.test.instructions
            if not inst.is_fence
        }
        report.append(
            f"[§6.4] orders appearing in minimal tests at bound {bound}: "
            + ", ".join(sorted(o.name for o in orders_used))
        )
        assert Order.RLX in orders_used
        assert Order.ACQ in orders_used or Order.REL in orders_used

    def test_runtime_reported(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        for bound in BOUNDS:
            report.append(
                f"[§6.4] bound {bound}: "
                f"{sweep[bound].wall_seconds:.3f}s, "
                f"{sweep[bound].candidates} candidates"
            )
        times = [sweep[b].wall_seconds for b in BOUNDS]
        assert times[-1] >= times[0]

    def test_mp_rel_acq_is_minimal_c11(self, benchmark):
        """The canonical C11 message-passing idiom survives synthesis."""
        from repro.core.minimality import MinimalityChecker
        from repro.litmus.events import read, write
        from repro.litmus.test import LitmusTest

        mp = LitmusTest(
            (
                (write(0, 1, Order.RLX), write(1, 1, Order.REL)),
                (read(1, Order.ACQ), read(0, Order.RLX)),
            )
        )
        checker = MinimalityChecker(get_model("c11"))
        result = run_once(benchmark, lambda: checker.check(mp))
        assert result.is_minimal
