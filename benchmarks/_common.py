"""Helpers shared by benchmark modules (non-fixture)."""

import os

__all__ = ["large_bounds_enabled", "run_once"]


def large_bounds_enabled() -> bool:
    """``REPRO_BENCH_LARGE=1`` extends sweeps by one bound."""
    return os.environ.get("REPRO_BENCH_LARGE", "") == "1"


def run_once(benchmark, fn):
    """Time a heavy experiment exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
