"""Figure 13 (+ Figs. 11, 12): TSO suite synthesis.

* Fig. 13a — synthesized tests vs the Owens suite vs the candidate space
* Fig. 13b — per-axiom counts: ``sc_per_loc`` saturates at 10 tests,
  ``rmw_atomicity`` saturates, ``causality`` grows without bound
* Fig. 13c — suite-generation runtime grows super-exponentially
* Fig. 11  — the sc_per_loc-only tests exist at small sizes
* Fig. 12  — the rmw_atomicity family
"""

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.catalog import owens_forbidden
from repro.models.registry import get_model

from _common import large_bounds_enabled, run_once

BOUNDS = (2, 3, 4, 5) + ((6,) if large_bounds_enabled() else ())


@pytest.fixture(scope="module")
def sweep():
    tso = get_model("tso")
    results = {}
    for bound in BOUNDS:
        results[bound] = synthesize(
            tso,
            SynthesisOptions(bound=bound, config=EnumerationConfig(max_events=bound)),
        )
    return results


class TestFig13:
    def test_fig13a_counts_vs_owens(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        owens_by_size: dict[int, int] = {}
        for entry in owens_forbidden():
            n = entry.test.num_events
            owens_by_size[n] = owens_by_size.get(n, 0) + 1
        owens_cum = 0
        report.append("[Fig 13a] bound | owens(cum) | synthesized | candidates")
        for bound in BOUNDS:
            owens_cum += owens_by_size.get(bound, 0)
            res = sweep[bound]
            report.append(
                f"[Fig 13a] {bound:5d} | {owens_cum:10d} | "
                f"{len(res.union):11d} | {res.candidates:10d}"
            )
        # paper: "an order of magnitude more tests than are in Owens,
        # while remaining tractable compared to all possible tests"
        top = BOUNDS[-1]
        assert len(sweep[top].union) > owens_cum
        assert len(sweep[top].union) < sweep[top].candidates

    def test_fig13b_per_axiom_counts(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        report.append(
            "[Fig 13b] bound | sc_per_loc | rmw_atomicity | causality | union"
        )
        for bound in BOUNDS:
            counts = sweep[bound].counts()
            report.append(
                f"[Fig 13b] {bound:5d} | {counts['sc_per_loc']:10d} | "
                f"{counts['rmw_atomicity']:13d} | "
                f"{counts['causality']:9d} | {counts['union']:5d}"
            )
        # paper: sc_per_loc saturates at ten tests
        assert sweep[BOUNDS[-1]].counts()["sc_per_loc"] == 10
        assert sweep[BOUNDS[-2]].counts()["sc_per_loc"] == 10
        # paper: rmw_atomicity saturates at four (we measure three — see
        # EXPERIMENTS.md) while causality keeps growing
        if large_bounds_enabled():
            assert (
                sweep[6].counts()["rmw_atomicity"]
                == sweep[5].counts()["rmw_atomicity"]
            )
        causality = [sweep[b].counts()["causality"] for b in BOUNDS]
        assert causality == sorted(causality)
        assert causality[-1] > causality[-2]

    def test_fig13c_runtime_growth(self, sweep, report, benchmark):
        # representative timed payload for the benchmark table; the full
        # sweep timings come from the (module-cached) sweep fixture
        run_once(
            benchmark,
            lambda: synthesize(
                get_model("tso"),
                SynthesisOptions(bound=3, config=EnumerationConfig(max_events=3)),
            ),
        )
        report.append("[Fig 13c] bound | runtime (s)")
        times = []
        for bound in BOUNDS:
            t = sweep[bound].wall_seconds
            times.append(t)
            report.append(f"[Fig 13c] {bound:5d} | {t:11.3f}")
        # paper: super-exponential runtime — successive ratios increase
        ratios = [
            times[i + 1] / max(times[i], 1e-9)
            for i in range(len(times) - 1)
        ]
        assert ratios[-1] > 2.0, "expected steep growth at the top bound"


class TestFig11Fig12:
    def test_fig11_sc_per_loc_family(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        suite = sweep[BOUNDS[-1]].per_axiom["sc_per_loc"]
        sizes = sorted(e.num_events for e in suite)
        report.append(
            f"[Fig 11] sc_per_loc family sizes: {sizes} (paper: 10 tests)"
        )
        assert len(suite) == 10
        # the family lives entirely on one location
        for entry in suite:
            assert len(entry.test.addresses) == 1

    def test_fig12_rmw_atomicity_family(self, sweep, report, benchmark):
        def build():
            return synthesize(
                get_model("tso"),
                SynthesisOptions(
                    bound=5,
                    axioms=["rmw_atomicity"],
                    config=EnumerationConfig(max_events=5, max_addresses=1),
                ),
            )

        res = run_once(benchmark, build)
        suite = res.per_axiom["rmw_atomicity"]
        report.append(
            f"[Fig 12] rmw_atomicity tests at bound 5: {len(suite)} "
            "(paper: saturates at 4; our exact criterion yields 3 — "
            "RMW||RMW contains RMW||W)"
        )
        assert len(suite) == 3
        for entry in suite:
            assert entry.test.rmw, "every test exercises an RMW"
