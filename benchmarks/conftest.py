"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or figures
and prints paper-vs-measured rows.  Absolute numbers depend on bounds
and hardware; the *assertions* check the shape results the paper
emphasizes (who saturates, what grows, who subsumes whom).

Set ``REPRO_BENCH_LARGE=1`` to extend sweeps by one instruction-count
bound (minutes instead of seconds per suite — the paper's own runtime
curves are super-exponential).
"""

import pytest


@pytest.fixture(scope="session")
def report():
    """Collects result rows; prints them and appends to bench_report.txt."""
    rows: list[str] = []
    yield rows
    if not rows:
        return
    header = "=" * 72
    block = "\n".join(
        [header, "benchmark harness results (paper vs measured)", header]
        + rows
    )
    print()
    print(block)
    with open("bench_report.txt", "a") as fh:
        fh.write(block + "\n")
