"""Sharded multiprocess runtime: speedup and exactness.

The synthesis loop is embarrassingly parallel (every candidate's
minimality check is independent), so ``jobs=N`` should approach an
``N``-fold wall-clock reduction while producing *byte-identical* suites.
This bench measures both halves of that claim:

* equality — per-axiom and union suite JSON from ``jobs=N`` matches
  ``jobs=1`` exactly, as do the candidate/unique/minimal counters;
* speedup — reported always, asserted (> 1.5x) only on machines with
  at least 4 cores, since the single-core CI boxes can only validate
  correctness.
"""

import os
import time

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.models.registry import get_model

from _common import large_bounds_enabled, run_once

BOUND = 5 if large_bounds_enabled() else 4
# At least two workers even on one core: correctness of the multiprocess
# path must be exercised everywhere, speedup is only asserted on >=4 cores.
JOBS = max(2, min(4, os.cpu_count() or 1))


def _options(jobs: int = 1) -> SynthesisOptions:
    return SynthesisOptions(
        bound=BOUND,
        config=EnumerationConfig(max_events=BOUND, max_addresses=2),
        jobs=jobs,
    )


@pytest.fixture(scope="module")
def runs():
    tso = get_model("tso")
    t0 = time.perf_counter()
    sequential = synthesize(tso, _options(jobs=1))
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = synthesize(tso, _options(jobs=JOBS))
    t_par = time.perf_counter() - t0
    return sequential, parallel, t_seq, t_par


class TestParallelRuntime:
    def test_parallel_output_identical(self, runs, report, benchmark):
        run_once(benchmark, lambda: None)
        sequential, parallel, _, _ = runs
        assert sequential.union.to_json() == parallel.union.to_json()
        for axiom in sequential.per_axiom:
            assert (
                sequential.per_axiom[axiom].to_json()
                == parallel.per_axiom[axiom].to_json()
            ), axiom
        assert sequential.candidates == parallel.candidates
        assert sequential.unique_candidates == parallel.unique_candidates
        assert sequential.minimal_tests == parallel.minimal_tests
        report.append(
            f"[parallel] TSO bound {BOUND}: jobs={JOBS} suites byte-identical "
            f"to jobs=1 ({len(sequential.union)} union tests)"
        )

    def test_parallel_speedup(self, runs, report, benchmark):
        run_once(benchmark, lambda: None)
        _, parallel, t_seq, t_par = runs
        speedup = t_seq / max(t_par, 1e-9)
        cores = os.cpu_count() or 1
        report.append(
            f"[parallel] TSO bound {BOUND}: 1 worker {t_seq:.2f}s vs "
            f"{JOBS} workers {t_par:.2f}s -> {speedup:.2f}x "
            f"({cores} cores; cpu={parallel.cpu_seconds:.2f}s across workers)"
        )
        if cores >= 4 and JOBS >= 4:
            assert speedup > 1.5, (
                f"expected >1.5x wall-clock speedup on {cores} cores, "
                f"measured {speedup:.2f}x"
            )
        else:
            pytest.skip(
                f"speedup assertion needs >= 4 cores (have {cores}); "
                "equality already verified"
            )
