"""Figure 16 (+ §6.2): Power suite synthesis.

* Fig. 16a — synthesized counts vs the Cambridge summary suite
* Fig. 16b — per-axiom counts (no_thin_air dominated by dependency
  variety)
* Fig. 16c — runtime much steeper than TSO's (the paper blames the
  three dependency kinds and the recursive ppo)
* §6.2     — Cambridge reproduction: PPOAA only minimal as lwsync;
  LB+addrs+WW vs LB+datas+WW
"""

import pytest

from repro.core.compare import compare_suites
from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.catalog import CATALOG, cambridge_power_suite
from repro.models.registry import get_model

from _common import large_bounds_enabled, run_once

BOUNDS = (2, 3, 4) + ((5,) if large_bounds_enabled() else ())


def power_config(bound: int) -> EnumerationConfig:
    # dependency variety is Power's blow-up; keep two addresses and two
    # dep slots, as the published 4-instruction tests need
    return EnumerationConfig(
        max_events=bound, max_addresses=2, max_deps=2, max_rmws=1
    )


@pytest.fixture(scope="module")
def sweep():
    power = get_model("power")
    return {
        bound: synthesize(power, SynthesisOptions(bound=bound, config=power_config(bound)))
        for bound in BOUNDS
    }


class TestFig16:
    def test_fig16b_per_axiom_counts(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        axioms = get_model("power").axiom_names()
        report.append("[Fig 16b] bound | " + " | ".join(axioms) + " | union")
        for bound in BOUNDS:
            counts = sweep[bound].counts()
            row = " | ".join(f"{counts[a]:4d}" for a in axioms)
            report.append(
                f"[Fig 16b] {bound:5d} | {row} | {counts['union']:5d}"
            )
        top = sweep[BOUNDS[-1]].counts()
        # paper: no_thin_air dominates due to dependency variety
        assert top["no_thin_air"] >= max(
            top["observation"], top["propagation"]
        )
        assert top["union"] > 0

    def test_fig16c_runtime_steeper_than_tso(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        tso = get_model("tso")
        report.append("[Fig 16c] bound | power (s) | tso (s)")
        for bound in BOUNDS:
            tso_res = synthesize(
                tso,
                SynthesisOptions(
                    bound=bound,
                    config=EnumerationConfig(max_events=bound, max_addresses=2),
                ),
            )
            p, t = sweep[bound].wall_seconds, tso_res.wall_seconds
            report.append(
                f"[Fig 16c] {bound:5d} | {p:9.3f} | {t:7.3f}"
            )
            if bound == BOUNDS[-1]:
                # paper: Power's constant factor is much larger than TSO's
                assert p > t

    def test_fig16a_cambridge_comparison(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        power = get_model("power")
        bound = BOUNDS[-1]
        reference = [
            e
            for e in cambridge_power_suite()
            if e.name not in ("LB+datas+WW", "MP+sync+ctrl")  # allowed tests
        ]
        comp = compare_suites(reference, sweep[bound].union, power)
        direct = len(comp.both)
        subsumed = sum(
            1 for s in comp.reference_only.values() if s is not None
        )
        beyond = len(comp.reference_only) - subsumed
        report.append(
            f"[Fig 16a] Cambridge sample at bound {bound}: {direct} emitted "
            f"directly, {subsumed} subsumed, {beyond} beyond bound; "
            f"+{len(comp.synthesized_only)} new"
        )
        # within the bound every Cambridge test must be covered
        for name, sub in comp.reference_only.items():
            entry = CATALOG[name]
            if entry.test.num_events <= bound and sub is None:
                # published-but-non-minimal tests must still contain an
                # emitted subtest
                raise AssertionError(f"{name} not covered at bound {bound}")


class TestSection62:
    @pytest.fixture(scope="class")
    def checker(self):
        from repro.core.minimality import MinimalityChecker

        return MinimalityChecker(get_model("power"))

    def test_ppoaa_story(self, checker, report, benchmark):
        run_once(benchmark, lambda: None)
        sync_minimal = checker.check(CATALOG["PPOAA"].test).is_minimal
        lwsync_minimal = checker.check(
            CATALOG["PPOAA+lwsync"].test
        ).is_minimal
        report.append(
            f"[§6.2] PPOAA(sync) minimal={sync_minimal} (paper: no); "
            f"PPOAA(lwsync) minimal={lwsync_minimal} (paper: yes)"
        )
        assert not sync_minimal and lwsync_minimal

    def test_lb_addr_vs_data_story(self, checker, report, benchmark):
        run_once(benchmark, lambda: None)
        oracle = checker.oracle
        addrs = CATALOG["LB+addrs+WW"]
        datas = CATALOG["LB+datas+WW"]
        addr_forbidden = not oracle.observable(addrs.test, addrs.forbidden)
        data_allowed = oracle.observable(datas.test, datas.forbidden)
        report.append(
            "[§6.2] LB+addrs+WW forbidden="
            f"{addr_forbidden}, LB+datas+WW allowed={data_allowed} "
            "(address deps extend over po; data deps do not)"
        )
        assert addr_forbidden and data_allowed

    def test_lb_addrs_reproduced(self, sweep, benchmark):
        """The paper verified lb+addrs-style tests are synthesized."""
        run_once(benchmark, lambda: None)
        from repro.core.canonical import canonical_form

        bound = BOUNDS[-1]
        if bound < 4:
            pytest.skip("needs bound >= 4")
        union_tests = {
            canonical_form(t) for t in sweep[bound].union.tests()
        }
        assert canonical_form(CATALOG["LB+addrs"].test) in union_tests
        assert canonical_form(CATALOG["LB+datas"].test) in union_tests
