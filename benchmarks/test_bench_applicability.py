"""Table 2: the relaxation applicability matrix."""

from repro.relax.applicability import (
    RELAXATION_COLUMNS,
    Applicability,
    applicability_table,
    format_table,
)

from _common import run_once

#: The paper's Table 2, transcribed (Y yes, - no, 1/2 its footnotes).
PAPER_TABLE = {
    "sc":      {"RI": "Y", "DRMW": "Y", "DF": "-", "DMO": "-", "RD": "-", "DS": "-"},
    "tso":     {"RI": "Y", "DRMW": "Y", "DF": "-", "DMO": "-", "RD": "-", "DS": "-"},
    "power":   {"RI": "Y", "DRMW": "Y", "DF": "Y", "DMO": "-", "RD": "Y", "DS": "-"},
    "armv7":   {"RI": "Y", "DRMW": "Y", "DF": "-", "DMO": "-", "RD": "Y", "DS": "-"},
    "armv8":   {"RI": "Y", "DRMW": "Y", "DF": "1", "DMO": "Y", "RD": "Y", "DS": "-"},
    "itanium": {"RI": "Y", "DRMW": "Y", "DF": "Y", "DMO": "Y", "RD": "1", "DS": "-"},
    "scc":     {"RI": "Y", "DRMW": "Y", "DF": "Y", "DMO": "Y", "RD": "2", "DS": "-"},
    "hsa":     {"RI": "Y", "DRMW": "Y", "DF": "Y", "DMO": "Y", "RD": "2", "DS": "Y"},
    "c11":     {"RI": "Y", "DRMW": "Y", "DF": "Y", "DMO": "Y", "RD": "2", "DS": "-"},
    "opencl":  {"RI": "Y", "DRMW": "Y", "DF": "Y", "DMO": "Y", "RD": "2", "DS": "Y"},
}


class TestTable2:
    def test_matrix_matches_paper(self, report, benchmark):
        table = run_once(benchmark, applicability_table)
        mismatches = []
        for model, expected_row in PAPER_TABLE.items():
            # only the paper's columns: DV/UA postdate Table 2
            for col, want in expected_row.items():
                got = table[model][col].value
                if got != want:
                    mismatches.append(f"{model}/{col}: {got} != {want}")
        report.append(
            "[Table 2] applicability matrix matches the paper: "
            + ("yes" if not mismatches else f"NO ({mismatches})")
        )
        assert not mismatches

    def test_render(self, report, benchmark):
        text = run_once(benchmark, format_table)
        for line in text.splitlines():
            report.append(f"[Table 2] {line}")
        assert "tso" in text

    def test_derived_rows_cannot_drift(self, benchmark):
        """Rows for implemented models derive from vocabularies, so the
        code and the table agree by construction."""
        from repro.models.registry import MODEL_CLASSES

        def check():
            table = applicability_table()
            for name in MODEL_CLASSES:
                vocab = MODEL_CLASSES[name]().vocabulary
                assert bool(table[name]["DRMW"]) == vocab.allows_rmw
                assert bool(table[name]["DMO"]) == vocab.has_orders
            return True

        assert run_once(benchmark, check)
