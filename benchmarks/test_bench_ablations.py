"""Ablation benches for the design choices DESIGN.md calls out.

1. Criterion mode (Fig. 5b exact vs Fig. 5c approximate vs Fig. 19
   workaround): the false negatives the paper describes, measured.
2. Symmetry reduction (§5.1 / Fig. 9 / Fig. 14): raw emission vs the
   paper's greedy canonicalizer vs the exact one, including the WWC
   blind spot.
3. Oracle (explicit enumeration vs the Alloy/SAT stack): same answers,
   very different cost — the root of the paper's runtime curves.
4. Dependency vocabulary (§6.2): Power's candidate-space blow-up as a
   function of how many dependency kinds are enabled.
"""

import time

import pytest

from repro.alloy import AlloyOracle
from repro.core.canonical import paper_canonicalize, symmetry_class_size
from repro.core.enumerator import EnumerationConfig, count_tests
from repro.core.minimality import CriterionMode, MinimalityChecker
from repro.core.oracle import ExplicitOracle
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.catalog import CATALOG
from repro.litmus.events import DepKind, FenceKind, fence, read, write
from repro.litmus.test import LitmusTest
from repro.models.base import Vocabulary
from repro.models.registry import get_model

from _common import run_once


def sb_fence_sc():
    f = fence(FenceKind.FENCE_SC)
    return LitmusTest(
        ((write(0, 1), f, read(1)), (write(1, 1), f, read(0)))
    )


class TestCriterionModes:
    def test_fig18_fig19_false_negative(self, report, benchmark):
        scc = get_model("scc")
        test = sb_fence_sc()

        def verdicts():
            return {
                mode.value: MinimalityChecker(scc, mode)
                .check(test)
                .is_minimal
                for mode in CriterionMode
            }

        result = run_once(benchmark, verdicts)
        report.append(
            "[Fig 18/19] SB+FenceSCs minimal? "
            f"exact={result['exact']} (truth), "
            f"fig5c={result['execution']} (paper's false negative), "
            f"workaround={result['execution-wa']} (recovered)"
        )
        assert result == {
            "exact": True,
            "execution": False,
            "execution-wa": True,
        }

    def test_mode_suite_delta(self, report, benchmark):
        """Suite-level impact of the approximation on SCC."""
        scc = get_model("scc")
        config = EnumerationConfig(
            max_events=4, max_addresses=2, max_deps=0, max_rmws=0
        )

        def run(mode):
            return len(
                synthesize(scc, SynthesisOptions(bound=4, mode=mode, config=config)).union
            )

        exact = run_once(benchmark, lambda: run(CriterionMode.EXACT))
        approx = run(CriterionMode.EXECUTION)
        wa = run(CriterionMode.EXECUTION_WA)
        report.append(
            f"[Fig 5b/5c] SCC bound-4 union: exact={exact}, "
            f"fig5c={approx}, workaround={wa}"
        )
        # the approximation may lose tests (false negatives) and/or emit
        # technically-non-minimal ones (false positives, §4.3); the
        # workaround must recover at least the sc-order losses
        assert wa >= approx or exact >= approx


class TestSymmetryReduction:
    def test_fig9_fig14_duplication(self, report, benchmark):
        """How many raw variants collapse per canonical test, and the
        WWC pair the greedy canonicalizer misses."""

        def measure():
            wwc = CATALOG["WWC"].test
            swapped = LitmusTest(
                (wwc.threads[0], wwc.threads[2], wwc.threads[1])
            )
            greedy_collapses = paper_canonicalize(
                wwc
            ) == paper_canonicalize(swapped)
            classes = {
                name: symmetry_class_size(CATALOG[name].test)
                for name in ("MP", "SB", "WRC", "IRIW", "WWC")
            }
            return greedy_collapses, classes

        greedy_collapses, classes = run_once(benchmark, measure)
        for name, size in classes.items():
            report.append(
                f"[Fig 9] {name}: {size} raw presentation(s) per "
                "symmetry class"
            )
        report.append(
            "[Fig 14] greedy canonicalizer collapses swapped WWC: "
            f"{greedy_collapses} (paper: no — known blind spot)"
        )
        assert not greedy_collapses
        assert classes["WRC"] > 1

    def test_exact_vs_greedy_suite_size(self, report, benchmark):
        tso = get_model("tso")
        config = EnumerationConfig(max_events=4, max_addresses=2)

        def run(exact):
            return len(
                synthesize(
                    tso,
                    SynthesisOptions(bound=4, config=config, exact_symmetry=exact),
                ).union
            )

        exact = run_once(benchmark, lambda: run(True))
        greedy = run(False)
        report.append(
            f"[§5.1] TSO bound-4 union: exact canonicalizer={exact}, "
            f"paper's greedy={greedy}"
        )
        assert exact <= greedy


class TestOracleComparison:
    def test_sat_vs_explicit_cost(self, report, benchmark):
        """Same answers, different cost: the SAT stack pays per-instance
        solver calls where the explicit engine streams executions."""
        tso_alloy = AlloyOracle("tso")
        tso_explicit = ExplicitOracle(get_model("tso"))
        names = ["MP", "SB", "LB", "CoRW", "n5"]

        def explicit_pass():
            return {
                n: tso_explicit.analyze(CATALOG[n].test).model_valid
                for n in names
            }

        t0 = time.perf_counter()
        sat_outcomes = {
            n: tso_alloy.valid_outcomes(CATALOG[n].test) for n in names
        }
        sat_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        explicit_outcomes = run_once(benchmark, explicit_pass)
        explicit_time = time.perf_counter() - t0
        assert sat_outcomes == explicit_outcomes
        report.append(
            f"[§4] oracle agreement on {len(names)} tests; SAT stack "
            f"{sat_time:.3f}s vs explicit {max(explicit_time, 1e-4):.4f}s"
        )


class TestIncrementalOracle:
    def test_incremental_vs_cold_solver(self, report, benchmark):
        """The incremental engine must beat the cold-solver baseline on
        the x86-TSO size-4 workload and agree with it byte-for-byte.
        Emits ``BENCH_oracle.json`` (per-query latency, cache hit rates,
        end-to-end wall time) next to ``bench_report.txt``."""
        import json

        from repro.bench import oracle_workload_report

        envelope = run_once(benchmark, lambda: oracle_workload_report("tso", 4))
        with open("BENCH_oracle.json", "w") as fh:
            json.dump(envelope, fh, indent=2)
            fh.write("\n")
        assert envelope["schema"] == {"name": "bench-oracle", "version": 3}
        result = envelope["payload"]
        inc, cold = result["incremental"], result["cold"]
        pre = result["prefilter"]
        report.append(
            "[incremental oracle] TSO bound-4 relational synthesis: "
            f"incremental={inc['wall_seconds']:.2f}s "
            f"({inc['per_query_seconds'] * 1e6:.0f}us/query) vs "
            f"cold={cold['wall_seconds']:.2f}s "
            f"({cold['per_query_seconds'] * 1e6:.0f}us/query), "
            f"speedup={result['speedup']:.2f}x, "
            f"prefilter={pre['wall_seconds']:.2f}s "
            f"(hit_rate={pre['cache'].get('prefilter_hit_rate', 0.0):.0%}), "
            f"byte_identical={result['byte_identical']}"
        )
        assert result["byte_identical"]
        assert result["speedup"] >= 1.0
        assert pre["cache"].get("prefilter_hit_rate", 0.0) > 0.0


class TestDependencyVocabulary:
    def test_power_dep_blowup(self, report, benchmark):
        """§6.2: 'three separate types of dependency ... means each basic
        test shape has a huge number of subtle dependency variants'."""
        base = get_model("power").vocabulary

        def space(dep_kinds):
            vocab = Vocabulary(
                fence_kinds=base.fence_kinds,
                dep_kinds=dep_kinds,
                allows_rmw=False,
                fence_demotions=base.fence_demotions,
            )
            return count_tests(
                vocab,
                EnumerationConfig(
                    max_events=4, max_addresses=2, max_deps=2, max_rmws=0
                ),
            )

        full = run_once(
            benchmark,
            lambda: space(
                (
                    DepKind.ADDR,
                    DepKind.DATA,
                    DepKind.CTRL,
                    DepKind.CTRLISYNC,
                )
            ),
        )
        single = space((DepKind.DATA,))
        none = space(())
        report.append(
            f"[§6.2] Power bound-4 candidate space: 4 dep kinds={full}, "
            f"1 kind={single}, none={none}"
        )
        assert full > single > none
