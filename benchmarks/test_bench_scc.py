"""Figure 20 (+ §6.3): SCC suite synthesis.

* Fig. 20a — per-axiom counts: coherence/atomicity saturate; the other
  axioms keep growing, and per-axiom counts run higher than TSO's
  because SCC has more ways to synchronize (acquire/release AND fences)
* Fig. 20b — runtime growth, between TSO's and Power's
* §6.3     — FenceSC tests (sc total order) are synthesized, via the
  exact criterion (the paper needed its Fig. 19 workaround)
"""

import pytest

from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.events import FenceKind
from repro.models.registry import get_model

from _common import large_bounds_enabled, run_once

BOUNDS = (2, 3, 4) + ((5,) if large_bounds_enabled() else ())


def scc_config(bound: int) -> EnumerationConfig:
    return EnumerationConfig(
        max_events=bound, max_addresses=2, max_deps=1, max_rmws=1
    )


@pytest.fixture(scope="module")
def sweep():
    scc = get_model("scc")
    return {
        bound: synthesize(scc, SynthesisOptions(bound=bound, config=scc_config(bound)))
        for bound in BOUNDS
    }


class TestFig20:
    def test_fig20a_per_axiom_counts(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        axioms = get_model("scc").axiom_names()
        report.append("[Fig 20a] bound | " + " | ".join(axioms) + " | union")
        for bound in BOUNDS:
            counts = sweep[bound].counts()
            row = " | ".join(f"{counts[a]:4d}" for a in axioms)
            report.append(
                f"[Fig 20a] {bound:5d} | {row} | {counts['union']:5d}"
            )
        top, prev = (
            sweep[BOUNDS[-1]].counts(),
            sweep[BOUNDS[-2]].counts(),
        )
        # sc_per_loc reaches its 10-test fixpoint by bound 4 and stays
        # there (asserted against 5 in large mode); causality keeps
        # growing
        assert top["sc_per_loc"] == 10
        if BOUNDS[-1] >= 5:
            assert prev["sc_per_loc"] == top["sc_per_loc"]
        assert top["causality"] > prev["causality"]

    def test_fig20a_more_ways_to_synchronize_than_tso(
        self, sweep, report, benchmark
    ):
        """Paper: 'most per-axiom numbers are larger, since SCC provides
        more ways to synchronize (e.g., acquire/release vs. fences).'

        At laptop bounds the raw causality counts favour TSO (its strong
        default ppo forbids plain MP/LB/S, which SCC only forbids once
        annotated), so we measure the claim's mechanism directly: the
        variety of synchronization idioms appearing in minimal tests."""
        run_once(benchmark, lambda: None)
        bound = BOUNDS[-1]
        tso = synthesize(
            get_model("tso"),
            SynthesisOptions(
                bound=bound,
                config=EnumerationConfig(max_events=bound, max_addresses=2),
            ),
        )
        scc_causality = sweep[bound].counts()["causality"]
        tso_causality = tso.counts()["causality"]
        report.append(
            f"[Fig 20a] causality at bound {bound}: SCC={scc_causality} "
            f"vs TSO={tso_causality} (see bench docstring)"
        )

        def sync_mechanisms(result):
            kinds = set()
            for entry in result.union:
                for inst in entry.test.instructions:
                    if inst.is_fence:
                        kinds.add(inst.fence)
                    elif inst.order.is_acquire or inst.order.is_release:
                        kinds.add(inst.order)
            return kinds

        scc_kinds = sync_mechanisms(sweep[bound])
        tso_kinds = sync_mechanisms(tso)
        report.append(
            f"[Fig 20a] sync mechanisms in minimal tests: "
            f"SCC={sorted(k.name for k in scc_kinds)} vs "
            f"TSO={sorted(k.name for k in tso_kinds)}"
        )
        assert len(scc_kinds) > len(tso_kinds)

    def test_fig20b_runtime(self, sweep, report, benchmark):
        run_once(benchmark, lambda: None)
        report.append("[Fig 20b] bound | runtime (s)")
        times = [sweep[b].wall_seconds for b in BOUNDS]
        for bound, t in zip(BOUNDS, times):
            report.append(f"[Fig 20b] {bound:5d} | {t:11.3f}")
        assert times[-1] > times[0]


class _FenceOnlySCC(type(get_model("scc"))):
    """SCC restricted to plain accesses + fences: isolates the FenceSC
    story at bound 6 without the acquire/release combinatorics."""

    name = "scc-fences-bench"

    @property
    def vocabulary(self):
        base = super().vocabulary
        return type(base)(
            fence_kinds=base.fence_kinds,
            allows_rmw=False,
            fence_demotions=base.fence_demotions,
        )


class TestSection63:
    def test_fence_sc_tests_synthesized(self, report, benchmark):
        """SB-with-FenceSC patterns require the sc total order.  The
        paper's Fig. 5c criterion loses them without the Fig. 19
        workaround; the exact engine keeps them."""

        def build():
            return synthesize(
                _FenceOnlySCC(),
                SynthesisOptions(
                    bound=6,
                    config=EnumerationConfig(
                        max_events=6,
                        max_addresses=2,
                        max_deps=0,
                        max_rmws=0,
                        max_threads=2,
                        max_thread_size=3,
                    ),
                ),
            )

        res = run_once(benchmark, build)
        with_sc_fence = [
            e
            for e in res.union
            if any(
                inst.fence is FenceKind.FENCE_SC
                for inst in e.test.instructions
            )
        ]
        report.append(
            f"[§6.3] bound-6 two-thread SCC suite: {len(res.union)} tests, "
            f"{len(with_sc_fence)} using FenceSC (incl. SB+FenceSCs)"
        )
        assert with_sc_fence, "FenceSC tests must be synthesized"
