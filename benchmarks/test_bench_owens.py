"""Table 4: the Owens x86-TSO suite vs the synthesized causality suite.

The paper's claim: every Owens test the synthesis does not emit directly
*contains* (via instruction relaxations) a test that it does emit, so the
synthesized suite subsumes the hand-written one while adding new tests.
"""

import pytest

from repro.core.compare import compare_suites, is_subtest
from repro.core.enumerator import EnumerationConfig
from repro.core.synthesis import SynthesisOptions, synthesize
from repro.litmus.catalog import CATALOG, owens_forbidden
from repro.models.registry import get_model

from _common import large_bounds_enabled, run_once

BOUND = 6 if large_bounds_enabled() else 5


@pytest.fixture(scope="module")
def comparison():
    tso = get_model("tso")
    result = synthesize(
        tso,
        SynthesisOptions(bound=BOUND, config=EnumerationConfig(max_events=BOUND)),
    )
    return result, compare_suites(owens_forbidden(), result.union, tso)


class TestTable4:
    def test_table4_report(self, comparison, report, benchmark):
        run_once(benchmark, lambda: None)
        result, comp = comparison
        report.append(
            f"[Table 4] TSO bound {BOUND}: union={len(result.union)}, "
            f"Owens forbidden={len(owens_forbidden())}"
        )
        for name in comp.both:
            report.append(f"[Table 4]   BOTH      {name}")
        for name, sub in comp.reference_only.items():
            size = CATALOG[name].test.num_events
            if sub is not None:
                report.append(
                    f"[Table 4]   OWENS-ONLY {name} ({size} insts) "
                    f"contains a synthesized {sub.num_events}-inst test"
                )
            else:
                report.append(
                    f"[Table 4]   OWENS-ONLY {name} ({size} insts) "
                    f"exceeds bound {BOUND}"
                )
        report.append(
            f"[Table 4]   +{len(comp.synthesized_only)} synthesized tests "
            "not in Owens"
        )

    def test_every_small_owens_test_covered(self, comparison, benchmark):
        """Within the bound, the paper's subsumption claim must hold
        exactly: emitted directly, or containing an emitted subtest."""
        run_once(benchmark, lambda: None)
        _, comp = comparison
        for name, sub in comp.reference_only.items():
            if CATALOG[name].test.num_events <= BOUND:
                assert sub is not None, f"{name} neither emitted nor subsumed"

    def test_minimal_owens_tests_emitted_directly(
        self, comparison, benchmark
    ):
        run_once(benchmark, lambda: None)
        _, comp = comparison
        expected_direct = {"MP", "LB", "S", "2+2W", "WRC"}
        if BOUND >= 6:
            expected_direct |= {"SB+mfences", "IRIW"}
        assert expected_direct <= set(comp.both)

    def test_synthesis_adds_new_tests(self, comparison, benchmark):
        """Paper: 'causality reproduces the entirety of Owens, while also
        adding new tests that Owens did not include.'"""
        run_once(benchmark, lambda: None)
        _, comp = comparison
        assert len(comp.synthesized_only) > len(owens_forbidden())

    def test_fig10_n5_contains_corw(self, benchmark):
        """The worked example of §6.1."""
        tso = get_model("tso")
        result = run_once(
            benchmark,
            lambda: is_subtest(
                CATALOG["CoRW"].test, CATALOG["n5"].test, tso
            ),
        )
        assert result
