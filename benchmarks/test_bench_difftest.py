"""Differential-testing campaign throughput and determinism.

A campaign is CPU-bound fuzzing (generate, dual-oracle analyze, shrink),
so the interesting numbers are tests/second per model and the cost of
the injected-mutant checks; the interesting *claims* are that the stock
oracles never disagree and that every injected mutant dies with a
reproducer no larger than the test that found it.
"""

from repro.bench import difftest_campaign_report

from _common import large_bounds_enabled, run_once

BUDGET = 2000 if large_bounds_enabled() else 500
SEED = 2017

CAMPAIGNS = (
    ("tso", ("drop:sc_per_loc", "empty:fr")),
    ("sc", ("drop:sequential_consistency",)),
    ("power", ("empty:fr",)),
)


class TestDifftestCampaigns:
    def test_campaigns_clean_and_deterministic(self, report, benchmark):
        entries = run_once(
            benchmark,
            lambda: [
                (
                    model,
                    difftest_campaign_report(
                        model, seed=SEED, budget=BUDGET,
                        mutants=mutants, jobs=2,
                    ),
                )
                for model, mutants in CAMPAIGNS
            ],
        )
        for model, entry in entries:
            assert entry["schema"] == {"name": "bench-difftest", "version": 2}
            measurement = entry["payload"]
            doc = measurement["report"]["payload"]
            assert doc["clean"] is True, (model, doc)
            assert doc["discrepancies"] == [], model
            assert doc["surviving_mutants"] == [], model
            for tag, kill in doc["mutant_kills"].items():
                assert kill["events"] <= kill["original_events"], (model, tag)
            assert measurement["byte_identical"], model
            report.append(
                f"[difftest] {model} seed={SEED} budget={BUDGET}: "
                f"{measurement['tests_per_second']:.0f} tests/s, "
                f"{len(doc['mutant_kills'])} mutants killed, clean"
            )
